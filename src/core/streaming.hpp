// The streaming posterior pipeline's model-scoring sinks.
//
// The Gibbs driver feeds every retained draw to these accumulators at the
// moment it is emitted; the pointwise log-likelihood row is one batch
// probability fill into the reused workspace buffer, scored in place — no
// trace is stored and the store-then-rescore second likelihood pass
// disappears entirely. (Burn-in and thinned-away scans pay nothing:
// scoring happens per retained draw, not per scan.)
//
// Bit-identity: the stored-trace path (compute_waic over the pointwise
// matrix, summarize_residual_posterior over pooled traces) funnels through
// these same accumulators / summary helpers with the same per-chain feed
// order, so both modes produce identical bits for all schemes, priors and
// detection models.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/model_family.hpp"
#include "core/posterior.hpp"
#include "core/waic.hpp"
#include "mcmc/accumulator.hpp"
#include "stats/online.hpp"
#include "support/matrix.hpp"

namespace srm::core {

/// Online WAIC moments: per (data point, chain) a running log-sum-exp of
/// the log predictive densities and Welford moments of the finite ones,
/// merged in chain order at finalization. add_draw is allocation-free.
class WaicAccumulator {
 public:
  WaicAccumulator(std::size_t data_points, std::size_t chain_count);

  /// One retained draw's pointwise row: log_lik[i] = log p(x_{i+1} | draw).
  void add_draw(std::size_t chain, std::span<const double> log_lik);

  /// Merges the chain shards (chain order) into the WaicResult. Requires
  /// at least 2 draws in total.
  [[nodiscard]] WaicResult finalize() const;

  [[nodiscard]] std::size_t data_points() const { return data_points_; }

 private:
  std::size_t data_points_;
  std::size_t chain_count_;
  std::vector<stats::OnlineLogSumExp> log_sums_;  ///< [i * chain_count + c]
  std::vector<stats::OnlineMoments> moments_;     ///< finite terms only
};

/// PosteriorAccumulator that scores every retained draw in-scan: evaluates
/// the pointwise log-likelihood row through the model's type-erased
/// pointwise_row channel (falling back to a model-made workspace when the
/// sampler's workspace is not the model's own scan type, e.g. stored-trace
/// replay or a lane pack) and streams it into a WaicAccumulator. With
/// `keep_matrix` it additionally retains the flat k x S matrix PSIS-LOO's
/// tail fits need, laid out exactly like pointwise_log_likelihood_matrix.
class StreamingScorer final : public mcmc::PosteriorAccumulator {
 public:
  StreamingScorer(const SrmModel& model, std::size_t chain_count,
                  std::size_t draws_per_chain, bool keep_matrix = false);

  void accumulate(std::size_t chain, std::span<const double> state,
                  mcmc::GibbsWorkspace* workspace) override;

  [[nodiscard]] WaicResult waic() const { return waic_.finalize(); }

  /// The retained k x S matrix; requires keep_matrix and all chains fed.
  [[nodiscard]] const support::Matrix& log_likelihood_matrix() const;

 private:
  const SrmModel& model_;
  std::size_t chain_count_;
  std::size_t draws_per_chain_;
  bool keep_matrix_;
  WaicAccumulator waic_;
  support::Matrix matrix_;  ///< k x (chains * draws) when keep_matrix
  struct ChainSlot {
    std::vector<double> row;  ///< pointwise scratch, one slot per data point
    std::unique_ptr<mcmc::GibbsWorkspace> fallback;  ///< lazy, replay only
    std::size_t draws = 0;
  };
  std::vector<ChainSlot> chains_;
};

/// PosteriorAccumulator for the residual-bug posterior: buffers each
/// chain's residual draws (pre-allocated — the "bounded reservoir sized by
/// the retention policy") and finalizes through the exact stored-trace
/// summary helper over the chain-ordered concatenation.
class ResidualAccumulator final : public mcmc::PosteriorAccumulator {
 public:
  ResidualAccumulator(std::size_t residual_index, std::size_t chain_count,
                      std::size_t draws_per_chain);

  void accumulate(std::size_t chain, std::span<const double> state,
                  mcmc::GibbsWorkspace* workspace) override;

  /// summarize_residual_samples over the pooled (chain-ordered) draws.
  [[nodiscard]] ResidualPosterior finalize() const;

 private:
  std::size_t residual_index_;
  support::Matrix draws_;            ///< one row per chain
  std::vector<std::size_t> counts_;  ///< draws received per chain
};

}  // namespace srm::core
