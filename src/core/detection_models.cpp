#include "core/detection_models.hpp"

#include <array>
#include <limits>
#include <cmath>

#include "core/detection_simd.hpp"
#include "core/detection_tables.hpp"
#include "core/size_biased.hpp"
#include "support/error.hpp"
#include "support/format.hpp"

namespace srm::core {

namespace {

void check_zeta(const DetectionModel& model, std::span<const double> zeta) {
  SRM_EXPECTS(zeta.size() == model.parameter_count(),
              "zeta size must match the detection model's parameter count");
}

void check_batch(const DetectionModel& model, std::size_t days,
                 std::span<const double> zeta, std::span<const double> out) {
  check_zeta(model, zeta);
  SRM_EXPECTS(out.size() >= days,
              "batch detection output buffer is smaller than `days`");
}

// Day-indexed constants (log d, the Pareto hazard exponent) live in the
// shared thread_local tables of detection_tables.hpp; each model pulls the
// column it needs per probe.

class ConstantModel final : public DetectionModel {
 public:
  DetectionModelKind kind() const override {
    return DetectionModelKind::kConstant;
  }
  std::string name() const override { return "model0"; }
  std::size_t parameter_count() const override { return 1; }
  std::vector<ParameterSupport> parameter_supports(
      const DetectionModelLimits&) const override {
    return {{"mu", 0.0, 1.0}};
  }
  double probability(std::size_t day,
                     std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    return zeta[0];  // Eq (3)
  }
  void probabilities_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const double mu = zeta[0];
    for (std::size_t day = 1; day <= days; ++day) out[day - 1] = mu;
  }
  void log_survivals_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const double mu = zeta[0];
    const double log_q = mu >= 1.0
                             ? -std::numeric_limits<double>::infinity()
                             : std::log1p(-mu);
    for (std::size_t day = 1; day <= days; ++day) out[day - 1] = log_q;
  }
  void detection_into(std::size_t days, std::span<const double> zeta,
                      std::span<double> probabilities_out,
                      std::span<double> log_survivals_out) const override {
    probabilities_into(days, zeta, probabilities_out);
    log_survivals_into(days, zeta, log_survivals_out);
  }
};

class PadgettSpurrierModel final : public DetectionModel {
 public:
  DetectionModelKind kind() const override {
    return DetectionModelKind::kPadgettSpurrier;
  }
  std::string name() const override { return "model1"; }
  std::size_t parameter_count() const override { return 2; }
  std::vector<ParameterSupport> parameter_supports(
      const DetectionModelLimits& limits) const override {
    return {{"mu", 0.0, 1.0}, {"theta", 0.0, limits.theta_max}};
  }
  double probability(std::size_t day,
                     std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    const double mu = zeta[0];
    const double theta = zeta[1];
    return 1.0 - mu / (theta * static_cast<double>(day) + 1.0);  // Eq (4)
  }
  double log_survival(std::size_t day,
                      std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    // q_i = mu / (theta i + 1) exactly.
    return std::log(zeta[0]) -
           std::log(zeta[1] * static_cast<double>(day) + 1.0);
  }
  void probabilities_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const double mu = zeta[0];
    const double theta = zeta[1];
    for (std::size_t day = 1; day <= days; ++day) {
      out[day - 1] = 1.0 - mu / (theta * static_cast<double>(day) + 1.0);
    }
  }
  void log_survivals_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const double log_mu = std::log(zeta[0]);
    const double theta = zeta[1];
    for (std::size_t day = 1; day <= days; ++day) {
      out[day - 1] =
          log_mu - std::log(theta * static_cast<double>(day) + 1.0);
    }
  }
  void detection_into(std::size_t days, std::span<const double> zeta,
                      std::span<double> probabilities_out,
                      std::span<double> log_survivals_out) const override {
    check_batch(*this, days, zeta, probabilities_out);
    check_batch(*this, days, zeta, log_survivals_out);
    const double mu = zeta[0];
    const double theta = zeta[1];
    const double log_mu = std::log(mu);
    for (std::size_t day = 1; day <= days; ++day) {
      const double denom = theta * static_cast<double>(day) + 1.0;
      probabilities_out[day - 1] = 1.0 - mu / denom;
      log_survivals_out[day - 1] = log_mu - std::log(denom);
    }
  }
};

class LogLogisticModel final : public DetectionModel {
 public:
  explicit LogLogisticModel(bool vectorized) : vectorized_(vectorized) {}
  DetectionModelKind kind() const override {
    return DetectionModelKind::kLogLogistic;
  }
  std::string name() const override { return "model2"; }
  std::size_t parameter_count() const override { return 2; }
  std::vector<ParameterSupport> parameter_supports(
      const DetectionModelLimits& limits) const override {
    return {{"mu", 0.0, 1.0}, {"gamma", -limits.gamma_bound,
                               limits.gamma_bound}};
  }
  double probability(std::size_t day,
                     std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    const double mu = zeta[0];
    const double gamma = zeta[1];
    const double exponent = std::log(static_cast<double>(day)) - gamma + 1.0;
    return (1.0 - mu) / (std::pow(mu, exponent) + 1.0);  // Eq (5)
  }
  double log_survival(std::size_t day,
                      std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    const double mu = zeta[0];
    const double exponent =
        std::log(static_cast<double>(day)) - zeta[1] + 1.0;
    // q = (mu^e + mu) / (mu^e + 1); for mu^e overflowing, q -> 1.
    const double t = std::pow(mu, exponent);
    if (!std::isfinite(t)) return 0.0;
    return std::log(t + mu) - std::log1p(t);
  }
  void probabilities_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const auto& log_day = day_tables(days).log_day;
    if (vectorized_) {
      simd_kernels::loglogistic_detection(days, zeta[0], zeta[1], log_day,
                                          out, {});
      return;
    }
    const double mu = zeta[0];
    const double gamma = zeta[1];
    const double one_minus_mu = 1.0 - mu;
    for (std::size_t day = 1; day <= days; ++day) {
      const double exponent = log_day[day - 1] - gamma + 1.0;
      out[day - 1] = one_minus_mu / (std::pow(mu, exponent) + 1.0);
    }
  }
  void log_survivals_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const auto& log_day = day_tables(days).log_day;
    if (vectorized_) {
      simd_kernels::loglogistic_detection(days, zeta[0], zeta[1], log_day,
                                          {}, out);
      return;
    }
    const double mu = zeta[0];
    const double gamma = zeta[1];
    for (std::size_t day = 1; day <= days; ++day) {
      const double exponent = log_day[day - 1] - gamma + 1.0;
      const double t = std::pow(mu, exponent);
      out[day - 1] =
          !std::isfinite(t) ? 0.0 : std::log(t + mu) - std::log1p(t);
    }
  }
  void detection_into(std::size_t days, std::span<const double> zeta,
                      std::span<double> probabilities_out,
                      std::span<double> log_survivals_out) const override {
    check_batch(*this, days, zeta, probabilities_out);
    check_batch(*this, days, zeta, log_survivals_out);
    const auto& log_day = day_tables(days).log_day;
    if (vectorized_) {
      simd_kernels::loglogistic_detection(days, zeta[0], zeta[1], log_day,
                                          probabilities_out,
                                          log_survivals_out);
      return;
    }
    const double mu = zeta[0];
    const double gamma = zeta[1];
    const double one_minus_mu = 1.0 - mu;
    // Both channels need mu^e for the same exponent; compute it once.
    for (std::size_t day = 1; day <= days; ++day) {
      const double exponent = log_day[day - 1] - gamma + 1.0;
      const double t = std::pow(mu, exponent);
      probabilities_out[day - 1] = one_minus_mu / (t + 1.0);
      log_survivals_out[day - 1] =
          !std::isfinite(t) ? 0.0 : std::log(t + mu) - std::log1p(t);
    }
  }

 private:
  bool vectorized_ = false;
};

class ParetoModel final : public DetectionModel {
 public:
  explicit ParetoModel(bool vectorized) : vectorized_(vectorized) {}
  DetectionModelKind kind() const override {
    return DetectionModelKind::kPareto;
  }
  std::string name() const override { return "model3"; }
  std::size_t parameter_count() const override { return 1; }
  std::vector<ParameterSupport> parameter_supports(
      const DetectionModelLimits&) const override {
    return {{"mu", 0.0, 1.0}};
  }
  double probability(std::size_t day,
                     std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    const double mu = zeta[0];
    const double d = static_cast<double>(day);
    const double exponent = std::log(d + 2.0) / (d + 1.0);
    return 1.0 - std::pow(mu, exponent);  // Eq (6)
  }
  double log_survival(std::size_t day,
                      std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    const double d = static_cast<double>(day);
    return std::log(d + 2.0) / (d + 1.0) * std::log(zeta[0]);
  }
  void probabilities_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const auto& exponents = day_tables(days).pareto_exponent;
    if (vectorized_) {
      simd_kernels::pareto_detection(days, zeta[0], exponents, out, {});
      return;
    }
    const double mu = zeta[0];
    for (std::size_t day = 1; day <= days; ++day) {
      out[day - 1] = 1.0 - std::pow(mu, exponents[day - 1]);
    }
  }
  void log_survivals_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const auto& exponents = day_tables(days).pareto_exponent;
    if (vectorized_) {
      simd_kernels::pareto_detection(days, zeta[0], exponents, {}, out);
      return;
    }
    const double log_mu = std::log(zeta[0]);
    for (std::size_t day = 1; day <= days; ++day) {
      out[day - 1] = exponents[day - 1] * log_mu;
    }
  }
  void detection_into(std::size_t days, std::span<const double> zeta,
                      std::span<double> probabilities_out,
                      std::span<double> log_survivals_out) const override {
    check_batch(*this, days, zeta, probabilities_out);
    check_batch(*this, days, zeta, log_survivals_out);
    const auto& exponents = day_tables(days).pareto_exponent;
    if (vectorized_) {
      simd_kernels::pareto_detection(days, zeta[0], exponents,
                                     probabilities_out, log_survivals_out);
      return;
    }
    const double mu = zeta[0];
    const double log_mu = std::log(mu);
    for (std::size_t day = 1; day <= days; ++day) {
      const double exponent = exponents[day - 1];
      probabilities_out[day - 1] = 1.0 - std::pow(mu, exponent);
      log_survivals_out[day - 1] = exponent * log_mu;
    }
  }

 private:
  bool vectorized_ = false;
};

class WeibullModel final : public DetectionModel {
 public:
  explicit WeibullModel(bool vectorized) : vectorized_(vectorized) {}
  DetectionModelKind kind() const override {
    return DetectionModelKind::kWeibull;
  }
  std::string name() const override { return "model4"; }
  std::size_t parameter_count() const override { return 2; }
  std::vector<ParameterSupport> parameter_supports(
      const DetectionModelLimits&) const override {
    return {{"mu", 0.0, 1.0}, {"omega", 0.0, 1.0}};
  }
  double probability(std::size_t day,
                     std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    const double mu = zeta[0];
    const double omega = zeta[1];
    const double d = static_cast<double>(day);
    const double exponent = std::pow(d, omega) - std::pow(d - 1.0, omega);
    return 1.0 - std::pow(mu, exponent);  // Eq (7)
  }
  double log_survival(std::size_t day,
                      std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    const double d = static_cast<double>(day);
    const double exponent =
        std::pow(d, zeta[1]) - std::pow(d - 1.0, zeta[1]);
    return exponent * std::log(zeta[0]);
  }
  // The batch channels carry pow(day, omega) across loop iterations:
  // pow(d - 1, omega) at day d is exactly pow(d, omega) from day d - 1
  // (integer days are exact doubles), so each day costs one day-power
  // instead of two. Bit-identical by the identical-inputs rule.
  void probabilities_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    if (vectorized_) {
      simd_kernels::weibull_detection(days, zeta[0], zeta[1],
                                      day_tables(days).log_day, out, {});
      return;
    }
    const double mu = zeta[0];
    const double omega = zeta[1];
    double prev = std::pow(0.0, omega);
    for (std::size_t day = 1; day <= days; ++day) {
      const double cur = std::pow(static_cast<double>(day), omega);
      out[day - 1] = 1.0 - std::pow(mu, cur - prev);
      prev = cur;
    }
  }
  void log_survivals_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    if (vectorized_) {
      simd_kernels::weibull_detection(days, zeta[0], zeta[1],
                                      day_tables(days).log_day, {}, out);
      return;
    }
    const double omega = zeta[1];
    const double log_mu = std::log(zeta[0]);
    double prev = std::pow(0.0, omega);
    for (std::size_t day = 1; day <= days; ++day) {
      const double cur = std::pow(static_cast<double>(day), omega);
      out[day - 1] = (cur - prev) * log_mu;
      prev = cur;
    }
  }
  void detection_into(std::size_t days, std::span<const double> zeta,
                      std::span<double> probabilities_out,
                      std::span<double> log_survivals_out) const override {
    check_batch(*this, days, zeta, probabilities_out);
    check_batch(*this, days, zeta, log_survivals_out);
    if (vectorized_) {
      simd_kernels::weibull_detection(days, zeta[0], zeta[1],
                                      day_tables(days).log_day,
                                      probabilities_out, log_survivals_out);
      return;
    }
    const double mu = zeta[0];
    const double omega = zeta[1];
    const double log_mu = std::log(mu);
    double prev = std::pow(0.0, omega);
    for (std::size_t day = 1; day <= days; ++day) {
      const double cur = std::pow(static_cast<double>(day), omega);
      const double exponent = cur - prev;
      probabilities_out[day - 1] = 1.0 - std::pow(mu, exponent);
      log_survivals_out[day - 1] = exponent * log_mu;
      prev = cur;
    }
  }

 private:
  bool vectorized_ = false;
};

class RayleighModel final : public DetectionModel {
 public:
  DetectionModelKind kind() const override {
    return DetectionModelKind::kRayleigh;
  }
  std::string name() const override { return "model5"; }
  std::size_t parameter_count() const override { return 1; }
  std::vector<ParameterSupport> parameter_supports(
      const DetectionModelLimits&) const override {
    return {{"mu", 0.0, 1.0}};
  }
  double probability(std::size_t day,
                     std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    // i^2 - (i-1)^2 = 2i - 1: the discrete Weibull of Eq (7) at shape 2,
    // i.e. a linearly increasing hazard exponent.
    const double exponent = 2.0 * static_cast<double>(day) - 1.0;
    return 1.0 - std::pow(zeta[0], exponent);
  }
  double log_survival(std::size_t day,
                      std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    return (2.0 * static_cast<double>(day) - 1.0) * std::log(zeta[0]);
  }
  void probabilities_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const double mu = zeta[0];
    for (std::size_t day = 1; day <= days; ++day) {
      const double exponent = 2.0 * static_cast<double>(day) - 1.0;
      out[day - 1] = 1.0 - std::pow(mu, exponent);
    }
  }
  void log_survivals_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const double log_mu = std::log(zeta[0]);
    for (std::size_t day = 1; day <= days; ++day) {
      out[day - 1] = (2.0 * static_cast<double>(day) - 1.0) * log_mu;
    }
  }
  void detection_into(std::size_t days, std::span<const double> zeta,
                      std::span<double> probabilities_out,
                      std::span<double> log_survivals_out) const override {
    check_batch(*this, days, zeta, probabilities_out);
    check_batch(*this, days, zeta, log_survivals_out);
    const double mu = zeta[0];
    const double log_mu = std::log(mu);
    for (std::size_t day = 1; day <= days; ++day) {
      const double exponent = 2.0 * static_cast<double>(day) - 1.0;
      probabilities_out[day - 1] = 1.0 - std::pow(mu, exponent);
      log_survivals_out[day - 1] = exponent * log_mu;
    }
  }
};

class LearningCurveModel final : public DetectionModel {
 public:
  DetectionModelKind kind() const override {
    return DetectionModelKind::kLearningCurve;
  }
  std::string name() const override { return "model6"; }
  std::size_t parameter_count() const override { return 2; }
  std::vector<ParameterSupport> parameter_supports(
      const DetectionModelLimits& limits) const override {
    return {{"mu", 0.0, 1.0}, {"theta", 0.0, limits.theta_max}};
  }
  double probability(std::size_t day,
                     std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    const double mu = zeta[0];
    const double theta_i = zeta[1] * static_cast<double>(day);
    // Detection skill ramps from ~0 on day 1 toward the asymptote mu —
    // the "testers learn the system" mirror image of model1 (which starts
    // at 1 - mu and saturates at 1).
    return mu * theta_i / (theta_i + 1.0);
  }
  double log_survival(std::size_t day,
                      std::span<const double> zeta) const override {
    check_zeta(*this, zeta);
    SRM_EXPECTS(day >= 1, "day must be >= 1");
    const double theta_i = zeta[1] * static_cast<double>(day);
    // q = (theta i (1 - mu) + 1) / (theta i + 1) exactly.
    return std::log(theta_i * (1.0 - zeta[0]) + 1.0) - std::log1p(theta_i);
  }
  void probabilities_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const double mu = zeta[0];
    const double theta = zeta[1];
    for (std::size_t day = 1; day <= days; ++day) {
      const double theta_i = theta * static_cast<double>(day);
      out[day - 1] = mu * theta_i / (theta_i + 1.0);
    }
  }
  void log_survivals_into(std::size_t days, std::span<const double> zeta,
                          std::span<double> out) const override {
    check_batch(*this, days, zeta, out);
    const double one_minus_mu = 1.0 - zeta[0];
    const double theta = zeta[1];
    for (std::size_t day = 1; day <= days; ++day) {
      const double theta_i = theta * static_cast<double>(day);
      out[day - 1] =
          std::log(theta_i * one_minus_mu + 1.0) - std::log1p(theta_i);
    }
  }
  void detection_into(std::size_t days, std::span<const double> zeta,
                      std::span<double> probabilities_out,
                      std::span<double> log_survivals_out) const override {
    check_batch(*this, days, zeta, probabilities_out);
    check_batch(*this, days, zeta, log_survivals_out);
    const double mu = zeta[0];
    const double one_minus_mu = 1.0 - mu;
    const double theta = zeta[1];
    for (std::size_t day = 1; day <= days; ++day) {
      const double theta_i = theta * static_cast<double>(day);
      probabilities_out[day - 1] = mu * theta_i / (theta_i + 1.0);
      log_survivals_out[day - 1] =
          std::log(theta_i * one_minus_mu + 1.0) - std::log1p(theta_i);
    }
  }
};

constexpr std::array<DetectionModelKind, 5> kAllKinds = {
    DetectionModelKind::kConstant,        DetectionModelKind::kPadgettSpurrier,
    DetectionModelKind::kLogLogistic,     DetectionModelKind::kPareto,
    DetectionModelKind::kWeibull,
};

constexpr std::array<DetectionModelKind, 2> kExtendedKinds = {
    DetectionModelKind::kRayleigh,
    DetectionModelKind::kLearningCurve,
};

}  // namespace

std::span<const DetectionModelKind> all_detection_model_kinds() {
  return kAllKinds;
}

std::span<const DetectionModelKind> extended_detection_model_kinds() {
  return kExtendedKinds;
}

std::string to_string(DetectionModelKind kind) {
  // The size-biased multinomial is not part of the "modelN" hazard
  // catalogue; it carries its own stable name in artifacts and flags.
  if (kind == DetectionModelKind::kSizeBiasedMultinomial) {
    return "multinomial";
  }
  return "model" + support::dec(static_cast<int>(kind));
}

std::optional<DetectionModelKind> detection_model_from_string(
    const std::string& name) {
  for (const auto kind : all_detection_model_kinds()) {
    if (to_string(kind) == name) return kind;
  }
  for (const auto kind : extended_detection_model_kinds()) {
    if (to_string(kind) == name) return kind;
  }
  if (name == to_string(DetectionModelKind::kSizeBiasedMultinomial)) {
    return DetectionModelKind::kSizeBiasedMultinomial;
  }
  return std::nullopt;
}

std::vector<std::string> detection_model_names() {
  std::vector<std::string> names;
  for (const auto kind : all_detection_model_kinds()) {
    names.push_back(to_string(kind));
  }
  for (const auto kind : extended_detection_model_kinds()) {
    names.push_back(to_string(kind));
  }
  return names;
}

double DetectionModel::log_survival(std::size_t day,
                                    std::span<const double> zeta) const {
  SRM_EXPECTS(day >= 1 && zeta.size() == parameter_count(),
              "log_survival requires a 1-based day and a full zeta vector");
  const double p = probability(day, zeta);
  if (p >= 1.0) return -std::numeric_limits<double>::infinity();
  return std::log1p(-p);
}

void DetectionModel::probabilities_into(std::size_t days,
                                        std::span<const double> zeta,
                                        std::span<double> out) const {
  SRM_EXPECTS(zeta.size() == parameter_count() && out.size() >= days,
              "probabilities_into requires a full zeta vector and "
              "out.size() >= days");
  for (std::size_t day = 1; day <= days; ++day) {
    out[day - 1] = probability(day, zeta);
  }
}

void DetectionModel::log_survivals_into(std::size_t days,
                                        std::span<const double> zeta,
                                        std::span<double> out) const {
  SRM_EXPECTS(zeta.size() == parameter_count() && out.size() >= days,
              "log_survivals_into requires a full zeta vector and "
              "out.size() >= days");
  for (std::size_t day = 1; day <= days; ++day) {
    out[day - 1] = log_survival(day, zeta);
  }
}

void DetectionModel::detection_into(std::size_t days,
                                    std::span<const double> zeta,
                                    std::span<double> probabilities_out,
                                    std::span<double> log_survivals_out)
    const {
  SRM_EXPECTS(probabilities_out.size() >= days &&
                  log_survivals_out.size() >= days,
              "detection_into requires both out buffers >= days");
  probabilities_into(days, zeta, probabilities_out);
  log_survivals_into(days, zeta, log_survivals_out);
}

std::vector<double> DetectionModel::log_survivals(
    std::size_t days, std::span<const double> zeta) const {
  SRM_EXPECTS(zeta.size() == parameter_count(),
              "log_survivals requires a full zeta vector");
  std::vector<double> log_q(days);
  log_survivals_into(days, zeta, log_q);
  return log_q;
}

std::vector<double> DetectionModel::probabilities(
    std::size_t days, std::span<const double> zeta) const {
  SRM_EXPECTS(zeta.size() == parameter_count(),
              "probabilities requires a full zeta vector");
  std::vector<double> p(days);
  probabilities_into(days, zeta, p);
  return p;
}

std::unique_ptr<DetectionModel> make_detection_model(DetectionModelKind kind,
                                                     bool vectorized) {
  switch (kind) {
    case DetectionModelKind::kConstant:
      return std::make_unique<ConstantModel>();
    case DetectionModelKind::kPadgettSpurrier:
      return std::make_unique<PadgettSpurrierModel>();
    case DetectionModelKind::kLogLogistic:
      return std::make_unique<LogLogisticModel>(vectorized);
    case DetectionModelKind::kPareto:
      return std::make_unique<ParetoModel>(vectorized);
    case DetectionModelKind::kWeibull:
      return std::make_unique<WeibullModel>(vectorized);
    case DetectionModelKind::kRayleigh:
      return std::make_unique<RayleighModel>();
    case DetectionModelKind::kLearningCurve:
      return std::make_unique<LearningCurveModel>();
    case DetectionModelKind::kSizeBiasedMultinomial:
      return make_size_biased_detection();  // core/size_biased.cpp
  }
  throw InvalidArgument("unknown DetectionModelKind");
}

}  // namespace srm::core
