// Optimal release planning — the decision-theoretic use of the residual-bug
// posterior, in the sequential-inspection spirit of Chun (2008), the paper's
// reference [10]: keep testing one more day iff the expected cost of the
// bugs it would remove exceeds the cost of the day.
//
// For a candidate release day d >= today, each bug remaining today survives
// the extra testing days independently with probability
// prod_{i=today+1..d} q_i(zeta), so under the posterior
//   E[cost(d)] = c_day * (d - today)
//              + c_bug * E[ R_today * prod_{i=today+1..d} q_i(zeta) ],
// with the expectation taken over the Gibbs draws of (R_today, zeta).
#pragma once

#include <cstddef>
#include <vector>

#include "core/model_family.hpp"
#include "mcmc/trace.hpp"

namespace srm::core {

struct ReleaseCosts {
  double cost_per_testing_day = 1.0;   ///< > 0
  double cost_per_residual_bug = 50.0; ///< >= 0 (field-failure cost)
};

struct ReleaseDecision {
  std::size_t day = 0;              ///< candidate release day (absolute)
  double expected_cost = 0.0;
  double expected_residual = 0.0;   ///< E[bugs still present at `day`]
};

struct ReleasePlan {
  std::vector<ReleaseDecision> schedule;  ///< one entry per candidate day
  ReleaseDecision best;                   ///< cost-minimizing entry
};

/// Evaluates releasing at each day in [today, today + horizon], where
/// `today` = model.data().days() and `run` is the posterior fitted on that
/// data. Horizon must be >= 1.
ReleasePlan plan_release(const SrmModel& model, const mcmc::McmcRun& run,
                         std::size_t horizon, const ReleaseCosts& costs);

}  // namespace srm::core
