// The five software bug-detection-probability models of Section 2.2
// (Eqs 3-7), following Zhao-Dohi-Okamura's catalogue:
//
//   model0  homogeneous:        p_i = mu
//   model1  Padgett-Spurrier:   p_i = 1 - mu / (theta i + 1)
//   model2  discrete log-logistic hazard:
//                               p_i = (1 - mu) / (mu^{ln i - gamma + 1} + 1)
//   model3  discrete Pareto hazard:
//                               p_i = 1 - mu^{ln(i+2)/(i+1)}
//   model4  discrete Weibull hazard:
//                               p_i = 1 - mu^{i^omega - (i-1)^omega}
//
// Each model maps a parameter vector zeta into day-indexed probabilities.
// The hyperprior of every component is uniform on its support (Section 3.3);
// unbounded supports (theta, gamma) are capped by configurable upper limits,
// which the paper tunes by WAIC minimization.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace srm::core {

enum class DetectionModelKind {
  kConstant = 0,        ///< model0
  kPadgettSpurrier = 1, ///< model1
  kLogLogistic = 2,     ///< model2
  kPareto = 3,          ///< model3
  kWeibull = 4,         ///< model4
  // --- library extensions beyond the paper's five (see ablation bench) ---
  kRayleigh = 5,        ///< model5: discrete Rayleigh hazard — the
                        ///< Nakagawa-Osaki discrete Weibull with shape 2,
                        ///< p_i = 1 - mu^{i^2 - (i-1)^2} (increasing)
  kLearningCurve = 6,   ///< model6: saturating learning ramp,
                        ///< p_i = mu * theta i / (theta i + 1) — detection
                        ///< skill grows from 0 toward mu
  kSizeBiasedMultinomial = 7,  ///< "multinomial": the size-biased family's
                               ///< detection likelihood (core/size_biased.hpp)
                               ///< — per-bug Gamma(shape, scale)
                               ///< detectability thinned day by day,
                               ///< p_i = 1 - ((scale+i-1)/(scale+i))^shape,
                               ///< a decreasing hazard (big bugs found
                               ///< first). Only valid under the sizebiased
                               ///< family.
};

/// The paper's five kinds (model0..model4), in paper order.
std::span<const DetectionModelKind> all_detection_model_kinds();

/// The extension kinds (model5..model6) added by this library.
std::span<const DetectionModelKind> extended_detection_model_kinds();

/// "model0" .. "model4".
std::string to_string(DetectionModelKind kind);

/// Inverse of to_string over BOTH registries (paper + extensions): the kind
/// whose to_string equals `name`, or nullopt. Callers that accept model
/// names (CLI flags, artifact deserialization) resolve through this so the
/// accepted-name set can never drift from the enum.
std::optional<DetectionModelKind> detection_model_from_string(
    const std::string& name);

/// Every registered kind name ("model0", "model1", ...), in registry order
/// (paper kinds first, then extensions) — the single source of truth for
/// help and error text listing the accepted --model values.
std::vector<std::string> detection_model_names();

/// Support bounds for one component of zeta. The uniform hyperprior lives
/// on the open interval (lower, upper).
struct ParameterSupport {
  std::string name;
  double lower = 0.0;
  double upper = 1.0;
};

/// Upper limits of the unbounded uniform hyperpriors (paper Section 3.3,
/// tuned by WAIC in Section 5.1). gamma in model2 is symmetric, so its
/// support is (-gamma_bound, +gamma_bound).
struct DetectionModelLimits {
  double theta_max = 10.0;
  double gamma_bound = 10.0;
  /// Supports of the size-biased multinomial detection parameters
  /// (core/size_biased.hpp). Serialized omit-if-default so every artifact
  /// identity that predates the size-biased family keeps its exact bytes.
  double sb_shape_max = 20.0;
  double sb_scale_max = 200.0;
};

/// A bug-detection-probability model: zeta -> {p_1, p_2, ...}.
class DetectionModel {
 public:
  virtual ~DetectionModel() = default;

  [[nodiscard]] virtual DetectionModelKind kind() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t parameter_count() const = 0;
  /// Support of each zeta component under the given limits.
  [[nodiscard]] virtual std::vector<ParameterSupport> parameter_supports(
      const DetectionModelLimits& limits) const = 0;

  /// p_i for 1-based day i; result is guaranteed inside [0, 1].
  /// Preconditions: zeta.size() == parameter_count(), zeta inside support.
  [[nodiscard]] virtual double probability(std::size_t day,
                                           std::span<const double> zeta)
      const = 0;

  /// log(1 - p_i), computed WITHOUT forming p_i when a stable direct form
  /// exists. This matters for the power-form hazards (models 3/4/5): e.g.
  /// model5's q_i = mu^{2i-1} underflows double precision long before the
  /// analytic log q_i = (2i-1) log mu stops being finite, and the naive
  /// log1p(-probability(...)) would spuriously return -inf and poison the
  /// likelihood. The default implementation is the naive formula; models
  /// with power-form survival override it.
  [[nodiscard]] virtual double log_survival(std::size_t day,
                                            std::span<const double> zeta)
      const;

  // --- batch channels (one virtual call per probe) ----------------------
  //
  // The Gibbs kernel evaluates a full p_1..p_k / log q_1..log q_k sweep per
  // slice-sampler probe; the scalar channel pays one virtual dispatch per
  // day for that. The batch channel fills a caller-owned buffer in a single
  // virtual call, and the per-model overrides hoist the day-invariant
  // subexpressions (log mu, 1 - mu, day-indexed exponent tables).
  //
  // Bit-identity contract: every value written is bit-identical to the
  // scalar channel's result for the same (day, zeta) — overrides may only
  // hoist/cache/share subexpressions that the scalar formulas compute from
  // identical inputs, never reassociate them.

  /// Fills out[i-1] = probability(i, zeta) for i = 1..days.
  /// Preconditions: zeta.size() == parameter_count(), out.size() >= days.
  virtual void probabilities_into(std::size_t days,
                                  std::span<const double> zeta,
                                  std::span<double> out) const;

  /// Fills out[i-1] = log_survival(i, zeta) for i = 1..days.
  virtual void log_survivals_into(std::size_t days,
                                  std::span<const double> zeta,
                                  std::span<double> out) const;

  /// Both channels in one pass, sharing the per-day powers they have in
  /// common (the dominant cost for the power-form hazards). Same contract.
  virtual void detection_into(std::size_t days, std::span<const double> zeta,
                              std::span<double> probabilities_out,
                              std::span<double> log_survivals_out) const;

  /// Convenience: p_1..p_days (allocates; prefer probabilities_into in
  /// hot paths).
  [[nodiscard]] std::vector<double> probabilities(
      std::size_t days, std::span<const double> zeta) const;

  /// Convenience: log q_1..log q_days (allocates; prefer log_survivals_into
  /// in hot paths).
  [[nodiscard]] std::vector<double> log_survivals(
      std::size_t days, std::span<const double> zeta) const;
};

/// Factory for the five paper models (plus extensions). With `vectorized`
/// set, the pow/log-heavy kinds (model2/3/4) route their batch channels
/// through the support/simd kernels in detection_simd.hpp — faster but
/// only ULP-equivalent to the scalar channel, which is why the flag rides
/// on GibbsOptions and forks every downstream result identity. The
/// scalar-channel kinds ignore it.
std::unique_ptr<DetectionModel> make_detection_model(DetectionModelKind kind,
                                                     bool vectorized = false);

}  // namespace srm::core
