#include "core/experiment.hpp"

#include <algorithm>

#include "diagnostics/ess.hpp"
#include "diagnostics/gelman_rubin.hpp"
#include "diagnostics/geweke.hpp"
#include "stats/summary.hpp"
#include "support/error.hpp"

namespace srm::core {

data::BugCountData dataset_at_observation(const data::BugCountData& base,
                                          std::size_t observation_day) {
  SRM_EXPECTS(observation_day >= 1, "observation day must be >= 1");
  if (observation_day <= base.days()) {
    return base.truncated(observation_day);
  }
  return base.with_virtual_testing(observation_day);
}

ObservationResult run_observation(const data::BugCountData& base,
                                  const ExperimentSpec& spec,
                                  std::size_t observation_day) {
  SRM_EXPECTS(observation_day >= 1, "observation day must be >= 1");
  const auto observed = dataset_at_observation(base, observation_day);

  BayesianSrm model(spec.prior, spec.model, observed, spec.config);
  const auto run = mcmc::run_gibbs(model, spec.gibbs);

  ObservationResult result;
  result.observation_day = observation_day;
  result.detected_so_far = observed.total();
  result.actual_residual = spec.eventual_total - observed.total();
  result.waic = compute_waic(model, run);
  result.posterior = summarize_residual_posterior(run);

  const auto& names = run.parameter_names();
  for (std::size_t p = 0; p < names.size(); ++p) {
    ParameterDiagnostics diag;
    diag.name = names[p];
    const auto pooled = run.pooled(p);
    diag.posterior_mean = stats::mean(pooled);
    diag.ess = diagnostics::effective_sample_size(pooled);
    if (run.chain_count() >= 2) {
      diag.psrf = diagnostics::gelman_rubin(run, p).psrf;
    } else {
      diag.psrf = 1.0;  // single chain: PSRF undefined, report neutral
    }
    const auto chain0 = run.chain(0).parameter(p);
    diag.geweke_z = diagnostics::geweke(chain0).z;
    result.diagnostics.push_back(std::move(diag));
  }
  return result;
}

std::vector<ObservationResult> run_experiment(const data::BugCountData& base,
                                              const ExperimentSpec& spec) {
  SRM_EXPECTS(!spec.observation_days.empty(),
              "experiment needs at least one observation day");
  std::vector<ObservationResult> results;
  results.reserve(spec.observation_days.size());
  for (const std::size_t day : spec.observation_days) {
    results.push_back(run_observation(base, spec, day));
  }
  return results;
}

}  // namespace srm::core
