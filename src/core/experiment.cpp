#include "core/experiment.hpp"

#include "core/fit.hpp"
#include "support/error.hpp"

namespace srm::core {

data::BugCountData dataset_at_observation(const data::BugCountData& base,
                                          std::size_t observation_day) {
  SRM_EXPECTS(observation_day >= 1, "observation day must be >= 1");
  if (observation_day <= base.days()) {
    return base.truncated(observation_day);
  }
  return base.with_virtual_testing(observation_day);
}

ObservationResult run_observation(const data::BugCountData& base,
                                  const ExperimentSpec& spec,
                                  std::size_t observation_day) {
  SRM_EXPECTS(observation_day >= 1, "observation day must be >= 1");
  // The sweep-oriented entry points are projections of the single-cell fit
  // API: one day of a spec is a FitRequest (core/fit.hpp), and every
  // frontend — this driver, the CLI, the estimation service — shares that
  // one path.
  return fit_cell(base, single_cell_request(spec, observation_day));
}

std::vector<ObservationResult> run_experiment(const data::BugCountData& base,
                                              const ExperimentSpec& spec,
                                              ObservationStore* store) {
  SRM_EXPECTS(!spec.observation_days.empty(),
              "experiment needs at least one observation day");
  std::vector<ObservationResult> results;
  results.reserve(spec.observation_days.size());
  for (const std::size_t day : spec.observation_days) {
    if (store == nullptr) {
      results.push_back(run_observation(base, spec, day));
      continue;
    }
    ObservationResult stored;
    switch (store->plan(spec, day, stored)) {
      case ObservationStore::Plan::kReuse:
        results.push_back(std::move(stored));
        break;
      case ObservationStore::Plan::kSkip:
        break;
      case ObservationStore::Plan::kCompute:
        results.push_back(run_observation(base, spec, day));
        store->on_computed(spec, day, results.back());
        break;
    }
  }
  return results;
}

}  // namespace srm::core
