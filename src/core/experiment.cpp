#include "core/experiment.hpp"

#include <algorithm>
#include <array>

#include "core/streaming.hpp"
#include "diagnostics/online.hpp"
#include "mcmc/accumulator.hpp"
#include "support/error.hpp"

namespace srm::core {

data::BugCountData dataset_at_observation(const data::BugCountData& base,
                                          std::size_t observation_day) {
  SRM_EXPECTS(observation_day >= 1, "observation day must be >= 1");
  if (observation_day <= base.days()) {
    return base.truncated(observation_day);
  }
  return base.with_virtual_testing(observation_day);
}

ObservationResult run_observation(const data::BugCountData& base,
                                  const ExperimentSpec& spec,
                                  std::size_t observation_day) {
  SRM_EXPECTS(observation_day >= 1, "observation day must be >= 1");
  const auto observed = dataset_at_observation(base, observation_day);

  BayesianSrm model(spec.prior, spec.model, observed, spec.config);

  // Every per-parameter statistic and the residual summary come from these
  // accumulators in both modes; with keep_traces the draws are stored and
  // replayed through them, without it they are fed in-scan. Same sinks,
  // same per-chain order => bit-identical results.
  diagnostics::ParameterStatsAccumulator stats(model.state_size(),
                                               spec.gibbs.chain_count,
                                               spec.gibbs.iterations);
  ResidualAccumulator residual(BayesianSrm::residual_index(),
                               spec.gibbs.chain_count,
                               spec.gibbs.iterations);

  ObservationResult result;
  result.observation_day = observation_day;
  result.detected_so_far = observed.total();
  result.actual_residual = spec.eventual_total - observed.total();

  std::vector<std::string> names;
  if (spec.gibbs.keep_traces) {
    // Stored-trace mode: sample, then replay the traces through the sinks
    // and score the pointwise matrix (the memory-heavy comparator path).
    const auto run = mcmc::run_gibbs(model, spec.gibbs);
    names = run.parameter_names();
    const std::array<mcmc::PosteriorAccumulator*, 2> sinks{&stats, &residual};
    mcmc::replay(run, sinks);
    result.waic = compute_waic(model, run);
  } else {
    // Streaming mode: the scorer consumes each draw's fresh workspace
    // buffers in-scan; no traces, no pointwise matrix, no second
    // likelihood pass.
    StreamingScorer scorer(model, spec.gibbs.chain_count,
                           spec.gibbs.iterations);
    const std::array<mcmc::PosteriorAccumulator*, 3> sinks{&scorer, &stats,
                                                           &residual};
    const auto run = mcmc::run_gibbs(model, spec.gibbs, sinks);
    names = run.parameter_names();
    result.waic = scorer.waic();
  }
  result.posterior = residual.finalize();

  for (std::size_t p = 0; p < names.size(); ++p) {
    const auto online = stats.parameter(p);
    ParameterDiagnostics diag;
    diag.name = names[p];
    diag.posterior_mean = online.posterior_mean;
    diag.ess = online.ess;
    diag.psrf = online.psrf;
    diag.geweke_z = online.geweke_z;
    result.diagnostics.push_back(std::move(diag));
  }
  return result;
}

std::vector<ObservationResult> run_experiment(const data::BugCountData& base,
                                              const ExperimentSpec& spec,
                                              ObservationStore* store) {
  SRM_EXPECTS(!spec.observation_days.empty(),
              "experiment needs at least one observation day");
  std::vector<ObservationResult> results;
  results.reserve(spec.observation_days.size());
  for (const std::size_t day : spec.observation_days) {
    if (store == nullptr) {
      results.push_back(run_observation(base, spec, day));
      continue;
    }
    ObservationResult stored;
    switch (store->plan(spec, day, stored)) {
      case ObservationStore::Plan::kReuse:
        results.push_back(std::move(stored));
        break;
      case ObservationStore::Plan::kSkip:
        break;
      case ObservationStore::Plan::kCompute:
        results.push_back(run_observation(base, spec, day));
        store->on_computed(spec, day, results.back());
        break;
    }
  }
  return results;
}

}  // namespace srm::core
