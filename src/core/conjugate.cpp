#include "core/conjugate.hpp"

#include <algorithm>
#include <cmath>

#include "core/likelihood.hpp"
#include "support/error.hpp"

namespace srm::core {

stats::Poisson poisson_residual_posterior(
    double lambda0, const data::BugCountData& data,
    std::span<const double> probabilities) {
  SRM_EXPECTS(probabilities.size() == data.days(),
              "need exactly one probability per observed day");
  return poisson_residual_posterior(lambda0, data,
                                    survival_product(probabilities));
}

stats::Poisson poisson_residual_posterior(double lambda0,
                                          const data::BugCountData&,
                                          double survival) {
  SRM_EXPECTS(lambda0 > 0.0, "Poisson prior requires lambda0 > 0");
  SRM_EXPECTS(survival >= 0.0 && survival <= 1.0,
              "survival product must lie in [0, 1]");
  return stats::Poisson(lambda0 * survival);  // Eq (10)
}

stats::NegativeBinomial negative_binomial_residual_posterior(
    double alpha0, double beta0, const data::BugCountData& data,
    std::span<const double> probabilities) {
  SRM_EXPECTS(probabilities.size() == data.days(),
              "need exactly one probability per observed day");
  return negative_binomial_residual_posterior(
      alpha0, beta0, data, survival_product(probabilities));
}

stats::NegativeBinomial negative_binomial_residual_posterior(
    double alpha0, double beta0, const data::BugCountData& data,
    double survival) {
  SRM_EXPECTS(alpha0 > 0.0, "negative binomial prior requires alpha0 > 0");
  SRM_EXPECTS(beta0 > 0.0 && beta0 < 1.0,
              "negative binomial prior requires beta0 in (0, 1)");
  SRM_EXPECTS(survival >= 0.0 && survival <= 1.0,
              "survival product must lie in [0, 1]");
  const double alpha_k = alpha0 + static_cast<double>(data.total());  // Eq (12)
  // 1 - beta_k = (1 - beta0) * prod q_i; clamp away from the open-interval
  // endpoints that extreme survival products could otherwise reach.
  const double beta_k =
      std::clamp(1.0 - (1.0 - beta0) * survival, 1e-300, 1.0 - 1e-16);
  return stats::NegativeBinomial(alpha_k, beta_k);
}

}  // namespace srm::core
