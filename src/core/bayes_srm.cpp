#include "core/bayes_srm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/conjugate.hpp"
#include "core/detection_simd.hpp"
#include "core/likelihood.hpp"
#include "mcmc/metropolis.hpp"
#include "mcmc/slice.hpp"
#include "random/samplers.hpp"
#include "stats/beta.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace srm::core {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Keeps initial draws strictly inside an open support.
double interior_uniform(random::Rng& rng, double lo, double hi) {
  const double margin = 0.05 * (hi - lo);
  return rng.uniform(lo + margin, hi - margin);
}
}  // namespace

BayesianSrm::BayesianSrm(PriorKind prior, DetectionModelKind model_kind,
                         data::BugCountData data, HyperPriorConfig config,
                         bool vectorized)
    : prior_(prior),
      model_(make_detection_model(model_kind, vectorized)),
      data_(std::move(data)),
      config_(config),
      vectorized_(vectorized),
      zeta_supports_(model_->parameter_supports(config.limits)) {
  SRM_EXPECTS(config.lambda_max > 0.0, "lambda_max must be positive");
  SRM_EXPECTS(config.alpha_max > 0.0, "alpha_max must be positive");
  SRM_EXPECTS(config.limits.theta_max > 0.0, "theta_max must be positive");
  SRM_EXPECTS(config.limits.gamma_bound > 0.0, "gamma_bound must be positive");
}

BayesianSrm::Workspace::Workspace(const BayesianSrm& model)
    : zeta(model.model_->parameter_count(), 0.0),
      probe(model.model_->parameter_count(), 0.0),
      proposal(model.model_->parameter_count(), 0.0),
      probabilities(model.data_.days(), 0.0),
      log_survivals(model.data_.days(), 0.0),
      log_p(model.vectorized_ ? model.data_.days() : 0, 0.0),
      log_1mp(model.vectorized_ ? model.data_.days() : 0, 0.0) {}

std::unique_ptr<mcmc::GibbsWorkspace> BayesianSrm::make_workspace() const {
  return std::make_unique<Workspace>(*this);
}

std::vector<std::string> BayesianSrm::parameter_names() const {
  std::vector<std::string> names{"residual"};
  if (prior_ == PriorKind::kPoisson) {
    names.emplace_back("lambda0");
  } else {
    names.emplace_back("alpha0");
    names.emplace_back("beta0");
  }
  for (const auto& support : zeta_supports_) names.push_back(support.name);
  return names;
}

std::vector<double> BayesianSrm::initial_state(random::Rng& rng) const {
  std::vector<double> state(state_size(), 0.0);
  if (prior_ == PriorKind::kPoisson) {
    state[1] = interior_uniform(rng, 0.0, config_.lambda_max);
  } else {
    state[1] = interior_uniform(rng, 0.0, config_.alpha_max);
    state[2] = interior_uniform(rng, 0.0, 1.0);
  }
  for (std::size_t j = 0; j < zeta_supports_.size(); ++j) {
    state[zeta_offset() + j] =
        interior_uniform(rng, zeta_supports_[j].lower, zeta_supports_[j].upper);
  }
  // Draw the residual from its exact conditional so the state is coherent.
  Workspace scratch(*this);
  const auto zeta =
      std::span<const double>(state).subspan(zeta_offset());
  update_residual(state, rng, stable_survival(zeta, scratch));
  return state;
}

void BayesianSrm::update(std::vector<double>& state, random::Rng& rng,
                         mcmc::GibbsWorkspace* workspace) const {
  SRM_EXPECTS(state.size() == state_size(), "state vector has wrong size");
  if (workspace != nullptr) {
    auto* ws = dynamic_cast<Workspace*>(workspace);
    SRM_EXPECTS(ws != nullptr,
                "update() requires a workspace from make_workspace()");
    update_with(state, rng, *ws);
    return;
  }
  Workspace scratch(*this);
  update_with(state, rng, scratch);
}

void BayesianSrm::update_with(std::vector<double>& state, random::Rng& rng,
                              Workspace& ws) const {
  if (config_.scheme == SamplerScheme::kCollapsed) {
    // R is integrated out of the zeta and hyperparameter conditionals and
    // re-drawn exactly at the end of the scan, eliminating the R-scale
    // coupling that slows the vanilla scheme.
    update_zeta_collapsed(state, rng, ws);
    update_hyperparameters_collapsed(state, rng, ws);
    const auto zeta = std::span<const double>(state).subspan(zeta_offset());
    update_residual(state, rng, stable_survival(zeta, ws));
  } else {
    const auto zeta = std::span<const double>(state).subspan(zeta_offset());
    update_residual(state, rng, stable_survival(zeta, ws));
    update_hyperparameters(state, rng);
    update_zeta(state, rng, ws);
  }
}

void BayesianSrm::update_residual(std::vector<double>& state,
                                  random::Rng& rng, double survival) const {
  if (prior_ == PriorKind::kPoisson) {
    const auto posterior = poisson_residual_posterior(
        std::max(state[1], 1e-12), data_, survival);
    state[residual_index()] = static_cast<double>(posterior.sample(rng));
  } else {
    const auto posterior = negative_binomial_residual_posterior(
        std::max(state[1], 1e-12), std::clamp(state[2], 1e-12, 1.0 - 1e-12),
        data_, survival);
    state[residual_index()] = static_cast<double>(posterior.sample(rng));
  }
}

double BayesianSrm::stable_survival(std::span<const double> zeta,
                                    Workspace& ws) const {
  // prod q_i via the models' stable log-survival channel; a result that
  // underflows to 0 is the correct limit (residual posterior collapses).
  // One batch virtual call fills the workspace buffer, then the summation
  // runs in the exact day order the per-day loop used.
  const std::size_t days = data_.days();
  model_->log_survivals_into(days, zeta, ws.log_survivals);
  double sum = 0.0;
  for (std::size_t i = 0; i < days; ++i) {
    const double log_q = ws.log_survivals[i];
    if (log_q == kNegInf) return 0.0;
    sum += log_q;
  }
  return std::exp(sum);
}

void BayesianSrm::update_hyperparameters(std::vector<double>& state,
                                         random::Rng& rng) const {
  const std::int64_t n = initial_bugs_of(state);
  if (prior_ == PriorKind::kPoisson) {
    // p(lambda0 | N) ∝ pi(lambda0) lambda0^N e^{-lambda0} on (0, lambda_max):
    // TruncatedGamma(N + 1, 1) under the uniform hyperprior, shape N + 1/2
    // under the Jeffreys variant pi ∝ lambda^{-1/2}.
    const double shape =
        static_cast<double>(n) + (config_.jeffreys_lambda0 ? 0.5 : 1.0);
    state[1] = random::sample_truncated_gamma(rng, shape, 1.0,
                                              config_.lambda_max);
  } else {
    // beta0 | N, alpha0 ~ Beta(alpha0 + 1, N + 1)  [exact].
    const double alpha0 = std::max(state[1], 1e-12);
    state[2] = stats::Beta(alpha0 + 1.0, static_cast<double>(n) + 1.0)
                   .sample(rng);
    state[2] = std::clamp(state[2], 1e-12, 1.0 - 1e-12);
    // alpha0 | N, beta0 ∝ Gamma(N + alpha0)/Gamma(alpha0) * beta0^{alpha0}.
    const double beta0 = state[2];
    const double nd = static_cast<double>(n);
    const auto log_density = [nd, beta0](double a) {
      if (a <= 0.0) return kNegInf;
      return math::lgamma(nd + a) - math::lgamma(a) + a * std::log(beta0);
    };
    mcmc::SliceOptions options;
    options.lower = 1e-10;
    options.upper = config_.alpha_max;
    options.initial_width = config_.alpha_max / 10.0;
    state[1] = mcmc::slice_sample(rng, std::clamp(state[1], options.lower,
                                                  options.upper),
                                  log_density, options);
  }
}

void BayesianSrm::update_zeta(std::vector<double>& state, random::Rng& rng,
                              Workspace& ws) const {
  const std::int64_t n = initial_bugs_of(state);
  const std::size_t days = data_.days();
  auto& zeta = ws.zeta;
  zeta.assign(state.begin() + static_cast<long>(zeta_offset()), state.end());
  // The probe buffer mirrors zeta except at the coordinate under update:
  // each density evaluation writes only probe[j] instead of copying the
  // whole vector, and the coordinate is restored after its slice move.
  auto& probe = ws.probe;
  probe.assign(zeta.begin(), zeta.end());
  for (std::size_t j = 0; j < zeta.size(); ++j) {
    const auto& support = zeta_supports_[j];
    const auto log_density = [&](double value) {
      if (value <= support.lower || value >= support.upper) return kNegInf;
      probe[j] = value;
      model_->detection_into(days, probe, ws.probabilities,
                             ws.log_survivals);
      return log_likelihood_zeta_kernel(data_, n, ws.probabilities,
                                        ws.log_survivals);
    };
    mcmc::SliceOptions options;
    options.lower = support.lower;
    options.upper = support.upper;
    options.initial_width = (support.upper - support.lower) / 10.0;
    zeta[j] = mcmc::slice_sample(
        rng,
        std::clamp(zeta[j], support.lower + 1e-12, support.upper - 1e-12),
        log_density, options);
    probe[j] = zeta[j];
    state[zeta_offset() + j] = zeta[j];
  }
}

void BayesianSrm::update_hyperparameters_collapsed(
    std::vector<double>& state, random::Rng& rng, Workspace& ws) const {
  const auto zeta = std::span<const double>(state).subspan(zeta_offset());
  const double survival = stable_survival(zeta, ws);
  const double s_k = static_cast<double>(data_.total());
  if (prior_ == PriorKind::kPoisson) {
    // p(lambda0 | zeta, x) ∝ pi(lambda0) lambda0^{s_k} e^{-lambda0 (1-Q)}:
    // TruncatedGamma(s_k + 1, 1 - Q) under the uniform hyperprior (shape
    // s_k + 1/2 for Jeffreys). Rate is clamped away from 0 for the
    // degenerate no-detection case Q = 1.
    const double shape = s_k + (config_.jeffreys_lambda0 ? 0.5 : 1.0);
    const double rate = std::max(1.0 - survival, 1e-12);
    state[1] =
        random::sample_truncated_gamma(rng, shape, rate, config_.lambda_max);
  } else {
    // p(beta0 | alpha0, zeta, x) ∝ beta0^{alpha0} (1-beta0)^{s_k}
    //                              (1 - (1-beta0) Q)^{-(s_k+alpha0)}.
    const double q = survival;
    {
      const double alpha0 = std::max(state[1], 1e-12);
      const auto log_density = [&](double b) {
        if (b <= 0.0 || b >= 1.0) return kNegInf;
        const double z = std::clamp((1.0 - b) * q, 0.0, 1.0 - 1e-16);
        return alpha0 * std::log(b) + s_k * std::log1p(-b) -
               (s_k + alpha0) * std::log1p(-z);
      };
      mcmc::SliceOptions options;
      options.lower = 1e-12;
      options.upper = 1.0 - 1e-12;
      options.initial_width = 0.1;
      state[2] = mcmc::slice_sample(
          rng, std::clamp(state[2], options.lower, options.upper),
          log_density, options);
    }
    // p(alpha0 | beta0, zeta, x) ∝ Gamma(s_k+alpha0)/Gamma(alpha0)
    //                              beta0^{alpha0} (1-z)^{-(s_k+alpha0)}.
    {
      const double beta0 = state[2];
      const double z = std::clamp((1.0 - beta0) * q, 0.0, 1.0 - 1e-16);
      const double log_one_minus_z = std::log1p(-z);
      const auto log_density = [&](double a) {
        if (a <= 0.0) return kNegInf;
        return math::lgamma(s_k + a) - math::lgamma(a) + a * std::log(beta0) -
               (s_k + a) * log_one_minus_z;
      };
      mcmc::SliceOptions options;
      options.lower = 1e-10;
      options.upper = config_.alpha_max;
      options.initial_width = config_.alpha_max / 10.0;
      state[1] = mcmc::slice_sample(
          rng, std::clamp(state[1], options.lower, options.upper),
          log_density, options);
    }
    // Joint (alpha0, beta0) independence-Metropolis move on their collapsed
    // conditional, to break the strong alpha0-beta0 ridge the two 1-D
    // updates crawl along. Same invariant distribution; the uniform
    // hyperprior makes the proposal density cancel.
    {
      const auto log_joint_hyper = [&](double a, double b) {
        if (a <= 0.0 || a >= config_.alpha_max || b <= 0.0 || b >= 1.0) {
          return kNegInf;
        }
        const double z = std::clamp((1.0 - b) * q, 0.0, 1.0 - 1e-16);
        return math::lgamma(s_k + a) - math::lgamma(a) + a * std::log(b) +
               s_k * std::log1p(-b) - (s_k + a) * std::log1p(-z);
      };
      double a = 0.0;
      double b = 0.0;
      mcmc::independence_metropolis(
          rng, 5, log_joint_hyper(state[1], state[2]),
          [&](random::Rng& proposal_rng) {
            a = proposal_rng.uniform(0.0, config_.alpha_max);
            b = proposal_rng.uniform(0.0, 1.0);
            return log_joint_hyper(a, b);
          },
          [&] {
            state[1] = a;
            state[2] = std::clamp(b, 1e-12, 1.0 - 1e-12);
          });
    }
  }
}

void BayesianSrm::update_zeta_collapsed(std::vector<double>& state,
                                        random::Rng& rng,
                                        Workspace& ws) const {
  auto& zeta = ws.zeta;
  zeta.assign(state.begin() + static_cast<long>(zeta_offset()), state.end());
  const double s_k = static_cast<double>(data_.total());
  const std::size_t days = data_.days();

  // Collapsed marginal log-density of a full zeta vector, evaluated through
  // the workspace's probability/log-survival buffers (no allocation).
  const auto log_density_of = [&](std::span<const double> probe) {
    for (std::size_t j = 0; j < probe.size(); ++j) {
      if (probe[j] <= zeta_supports_[j].lower ||
          probe[j] >= zeta_supports_[j].upper) {
        return kNegInf;
      }
    }
    model_->detection_into(days, probe, ws.probabilities, ws.log_survivals);
    const double base = log_likelihood_collapsed_base(data_, ws.probabilities,
                                                      ws.log_survivals);
    if (base == kNegInf) return kNegInf;
    double log_q_sum = 0.0;
    for (std::size_t i = 0; i < days; ++i) log_q_sum += ws.log_survivals[i];
    const double survival =
        std::isfinite(log_q_sum) ? std::exp(log_q_sum) : 0.0;
    if (prior_ == PriorKind::kPoisson) {
      // lambda0 is integrated out as well (its conditional is a truncated
      // gamma, so the normalizer is available in closed form):
      //   p(zeta | x) ∝ base(zeta) * Gamma(shape) (1-Q)^{-shape}
      //                 * P(shape, lambda_max (1-Q)),
      // with shape = s_k + 1 (uniform hyperprior) or s_k + 1/2 (Jeffreys).
      const double shape = s_k + (config_.jeffreys_lambda0 ? 0.5 : 1.0);
      const double rate = std::max(1.0 - survival, 1e-300);
      return base - shape * std::log(rate) +
             math::log_regularized_gamma_p(shape, config_.lambda_max * rate);
    }
    const double z =
        std::clamp((1.0 - state[2]) * survival, 0.0, 1.0 - 1e-16);
    return base - (s_k + state[1]) * std::log1p(-z);
  };

  // Probe buffer mirrors zeta outside the coordinate under update, exactly
  // as in the vanilla path.
  auto& probe = ws.probe;
  probe.assign(zeta.begin(), zeta.end());
  for (std::size_t j = 0; j < zeta.size(); ++j) {
    const auto& support = zeta_supports_[j];
    const auto log_density = [&](double value) {
      probe[j] = value;
      return log_density_of(probe);
    };
    mcmc::SliceOptions options;
    options.lower = support.lower;
    options.upper = support.upper;
    options.initial_width = (support.upper - support.lower) / 10.0;
    zeta[j] = mcmc::slice_sample(
        rng,
        std::clamp(zeta[j], support.lower + 1e-12, support.upper - 1e-12),
        log_density, options);
    probe[j] = zeta[j];
    state[zeta_offset() + j] = zeta[j];
  }

  // Mode-jump move: component-wise slice sampling cannot cross between
  // well-separated posterior modes (model2's (mu, gamma) surface is
  // genuinely multimodal on some datasets), so finish the scan with an
  // independence-Metropolis proposal drawn uniformly from the prior box.
  // The move targets the same collapsed marginal, so correctness is
  // unaffected; acceptance is rare but sufficient to mix across modes.
  // Uniform prior => the proposal density cancels in the MH ratio.
  constexpr int kModeJumpProposals = 5;
  auto& proposal = ws.proposal;
  mcmc::independence_metropolis(
      rng, kModeJumpProposals, log_density_of(zeta),
      [&](random::Rng& proposal_rng) {
        for (std::size_t j = 0; j < zeta.size(); ++j) {
          proposal[j] = proposal_rng.uniform(zeta_supports_[j].lower,
                                             zeta_supports_[j].upper);
        }
        return log_density_of(proposal);
      },
      [&] {
        zeta = proposal;  // equal sizes: copies in place, no allocation
        for (std::size_t j = 0; j < zeta.size(); ++j) {
          state[zeta_offset() + j] = zeta[j];
        }
      });
}

std::int64_t BayesianSrm::initial_bugs_of(
    std::span<const double> state) const {
  return data_.total() +
         static_cast<std::int64_t>(std::llround(state[residual_index()]));
}

std::vector<double> BayesianSrm::detection_probabilities(
    std::span<const double> zeta) const {
  return model_->probabilities(data_.days(), zeta);
}

std::vector<double> BayesianSrm::pointwise_log_likelihood(
    std::span<const double> state) const {
  Workspace scratch(*this);
  std::vector<double> terms(data_.days());
  pointwise_log_likelihood_into(state, scratch, terms);
  return terms;
}

void BayesianSrm::pointwise_log_likelihood_into(std::span<const double> state,
                                                Workspace& ws,
                                                std::span<double> out) const {
  SRM_EXPECTS(state.size() == state_size(), "state vector has wrong size");
  SRM_EXPECTS(out.size() >= data_.days(),
              "pointwise output needs one slot per testing day");
  model_->probabilities_into(data_.days(), state.subspan(zeta_offset()),
                             ws.probabilities);
  fill_pointwise(initial_bugs_of(state), ws, out);
}

void BayesianSrm::pointwise_into(std::span<const double> state, Workspace& ws,
                                 std::span<double> out) const {
  SRM_EXPECTS(state.size() == state_size(), "state vector has wrong size");
  SRM_EXPECTS(out.size() >= data_.days(),
              "pointwise output needs one slot per testing day");
  // One batch probability fill into the workspace buffer. Streaming scoring
  // and stored-trace replay both score through this exact call, so the two
  // pipeline modes agree bit for bit.
  model_->probabilities_into(data_.days(), state.subspan(zeta_offset()),
                             ws.probabilities);
  fill_pointwise(initial_bugs_of(state), ws, out);
}

bool BayesianSrm::is_scan_workspace(
    const mcmc::GibbsWorkspace& workspace) const {
  return dynamic_cast<const Workspace*>(&workspace) != nullptr;
}

void BayesianSrm::pointwise_row(std::span<const double> state,
                                mcmc::GibbsWorkspace& workspace,
                                std::span<double> out) const {
  auto* ws = dynamic_cast<Workspace*>(&workspace);
  SRM_EXPECTS(ws != nullptr,
              "pointwise_row requires a workspace from make_workspace()");
  pointwise_into(state, *ws, out);
}

void BayesianSrm::fill_pointwise(std::int64_t initial_bugs, Workspace& ws,
                                 std::span<double> out) const {
  if (!vectorized_) {
    for (std::size_t day = 1; day <= data_.days(); ++day) {
      out[day - 1] =
          log_pointwise_likelihood(data_, day, initial_bugs, ws.probabilities);
    }
    return;
  }
  // Vectorized fill: sweep log(p_i) and log(1 - p_i) through the simd
  // kernels, then combine per day with exactly the branch structure of
  // log_pointwise_likelihood (impossible counts and degenerate p_i take
  // the same early-outs, so only the transcendental terms differ, within
  // the documented ULP budget).
  simd_kernels::log_into(ws.probabilities, ws.log_p);
  simd_kernels::log1p_neg_into(ws.probabilities, ws.log_1mp);
  for (std::size_t day = 1; day <= data_.days(); ++day) {
    const std::int64_t remaining_before =
        initial_bugs - data_.cumulative_through(day - 1);
    const std::int64_t x = data_.count_on_day(day);
    if (remaining_before < x || x < 0) {
      out[day - 1] = kNegInf;
      continue;
    }
    const double p = ws.probabilities[day - 1];
    if (p <= 0.0) {
      out[day - 1] = x == 0 ? 0.0 : kNegInf;
      continue;
    }
    if (p >= 1.0) {
      out[day - 1] = x == remaining_before ? 0.0 : kNegInf;
      continue;
    }
    out[day - 1] = math::log_binomial(remaining_before, x) +
                   static_cast<double>(x) * ws.log_p[day - 1] +
                   static_cast<double>(remaining_before - x) *
                       ws.log_1mp[day - 1];
  }
}

double BayesianSrm::log_joint(std::span<const double> state) const {
  SRM_EXPECTS(state.size() == state_size(), "state vector has wrong size");
  const std::int64_t n = initial_bugs_of(state);
  const auto zeta = state.subspan(zeta_offset());
  for (std::size_t j = 0; j < zeta.size(); ++j) {
    if (zeta[j] <= zeta_supports_[j].lower ||
        zeta[j] >= zeta_supports_[j].upper) {
      return kNegInf;
    }
  }

  double log_prior;
  if (prior_ == PriorKind::kPoisson) {
    const double lambda0 = state[1];
    if (lambda0 <= 0.0 || lambda0 >= config_.lambda_max) return kNegInf;
    log_prior = static_cast<double>(n) * std::log(lambda0) - lambda0 -
                math::log_factorial(n);
    if (config_.jeffreys_lambda0) log_prior -= 0.5 * std::log(lambda0);
  } else {
    const double alpha0 = state[1];
    const double beta0 = state[2];
    if (alpha0 <= 0.0 || alpha0 >= config_.alpha_max || beta0 <= 0.0 ||
        beta0 >= 1.0) {
      return kNegInf;
    }
    log_prior = math::log_negbinomial_coefficient(alpha0, n) +
                alpha0 * std::log(beta0) +
                static_cast<double>(n) * std::log1p(-beta0);
  }
  return log_prior +
         log_likelihood(data_, n, detection_probabilities(zeta));
}

}  // namespace srm::core
