#include "core/model_family.hpp"

#include <algorithm>
#include <utility>

#include "core/bayes_srm.hpp"
#include "core/size_biased.hpp"
#include "support/error.hpp"

namespace srm::core {

namespace {

std::string accepted_model_names(const ModelFamily& family) {
  std::string names;
  for (const auto kind : family.accepted_models) {
    if (!names.empty()) names += '|';
    names += to_string(kind);
  }
  return names;
}

void register_poisson_family(ModelFamilyRegistry& registry) {
  ModelFamily family;
  family.kind = PriorKind::kPoisson;
  family.id = "poisson";
  family.display_name = "Poisson prior (NHPP)";
  family.table_title = "(i) Poisson prior.";
  family.summary =
      "Poisson(lambda0) initial bug content — the NHPP-based SRM "
      "(Rallis-Lansdowne), lambda0 under a uniform hyperprior";
  family.reference = "Rallis-Lansdowne; source paper Sec. 3.1";
  family.reproduction = true;
  const auto paper = all_detection_model_kinds();
  const auto extended = extended_detection_model_kinds();
  family.selection_models.assign(paper.begin(), paper.end());
  family.accepted_models.assign(paper.begin(), paper.end());
  family.accepted_models.insert(family.accepted_models.end(),
                                extended.begin(), extended.end());
  family.default_model = DetectionModelKind::kConstant;
  family.hyper_parameter_names = {"lambda0"};
  family.tuned_scale = TunedScale::kLambdaMax;
  family.supports_vectorized = true;
  family.supports_chain_lanes = true;
  family.make = [](DetectionModelKind model, data::BugCountData data,
                   const HyperPriorConfig& config,
                   bool vectorized) -> std::unique_ptr<SrmModel> {
    return std::make_unique<BayesianSrm>(PriorKind::kPoisson, model,
                                         std::move(data), config, vectorized);
  };
  registry.add(std::move(family));
}

void register_negative_binomial_family(ModelFamilyRegistry& registry) {
  ModelFamily family;
  family.kind = PriorKind::kNegativeBinomial;
  family.id = "negbin";
  family.display_name = "Negative binomial prior (NHMPP)";
  family.table_title = "(ii) Negative binomial prior.";
  family.summary =
      "NegBin(alpha0, beta0) initial bug content — the NHMPP-based SRM "
      "(heterogeneous Chun), alpha0 slice-sampled under a uniform hyperprior";
  family.reference = "heterogeneous Chun; source paper Sec. 3.2";
  family.reproduction = true;
  const auto paper = all_detection_model_kinds();
  const auto extended = extended_detection_model_kinds();
  family.selection_models.assign(paper.begin(), paper.end());
  family.accepted_models.assign(paper.begin(), paper.end());
  family.accepted_models.insert(family.accepted_models.end(),
                                extended.begin(), extended.end());
  family.default_model = DetectionModelKind::kConstant;
  family.hyper_parameter_names = {"alpha0", "beta0"};
  family.tuned_scale = TunedScale::kAlphaMax;
  family.supports_vectorized = true;
  family.supports_chain_lanes = true;
  family.make = [](DetectionModelKind model, data::BugCountData data,
                   const HyperPriorConfig& config,
                   bool vectorized) -> std::unique_ptr<SrmModel> {
    return std::make_unique<BayesianSrm>(PriorKind::kNegativeBinomial, model,
                                         std::move(data), config, vectorized);
  };
  registry.add(std::move(family));
}

}  // namespace

std::string to_string(PriorKind prior) { return family(prior).id; }

std::optional<PriorKind> prior_kind_from_string(const std::string& name) {
  const ModelFamily* found = find_family(name);
  if (found == nullptr) return std::nullopt;
  return found->kind;
}

std::string to_string(SamplerScheme scheme) {
  return scheme == SamplerScheme::kCollapsed ? "collapsed" : "vanilla";
}

std::optional<SamplerScheme> sampler_scheme_from_string(
    const std::string& name) {
  if (name == "collapsed") return SamplerScheme::kCollapsed;
  if (name == "vanilla") return SamplerScheme::kVanilla;
  return std::nullopt;
}

void ModelFamilyRegistry::add(ModelFamily family) {
  SRM_EXPECTS(!family.id.empty(), "model family id must be non-empty");
  SRM_EXPECTS(!family.table_title.empty(),
              "model family table title must be non-empty");
  SRM_EXPECTS(family.make != nullptr, "model family needs a factory");
  SRM_EXPECTS(!family.selection_models.empty(),
              "model family needs at least one selection model");
  if (find(family.id) != nullptr) {
    throw InvalidArgument("duplicate model family id: " + family.id);
  }
  for (const ModelFamily& existing : families_) {
    if (existing.kind == family.kind) {
      throw InvalidArgument("duplicate model family kind for id: " +
                            family.id);
    }
  }
  for (const auto kind : family.selection_models) {
    if (std::find(family.accepted_models.begin(),
                  family.accepted_models.end(),
                  kind) == family.accepted_models.end()) {
      throw InvalidArgument("model family " + family.id +
                            " selects a detection model it does not accept: " +
                            to_string(kind));
    }
  }
  families_.push_back(std::move(family));
}

const ModelFamily& ModelFamilyRegistry::family(PriorKind kind) const {
  for (const ModelFamily& entry : families_) {
    if (entry.kind == kind) return entry;
  }
  throw InvalidArgument("model family kind is not registered");
}

const ModelFamily* ModelFamilyRegistry::find(std::string_view id) const {
  for (const ModelFamily& entry : families_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

const ModelFamilyRegistry& ModelFamilyRegistry::instance() {
  static const ModelFamilyRegistry registry = [] {
    ModelFamilyRegistry bootstrap;
    register_poisson_family(bootstrap);
    register_negative_binomial_family(bootstrap);
    register_size_biased_family(bootstrap);  // core/size_biased.cpp
    return bootstrap;
  }();
  return registry;
}

const ModelFamilyRegistry& model_families() {
  return ModelFamilyRegistry::instance();
}

const ModelFamily& family(PriorKind kind) {
  return model_families().family(kind);
}

const ModelFamily* find_family(std::string_view id) {
  return model_families().find(id);
}

std::string family_ids_joined(char separator) {
  std::string joined;
  for (const ModelFamily& entry : model_families().families()) {
    if (!joined.empty()) joined += separator;
    joined += entry.id;
  }
  return joined;
}

std::vector<PriorKind> reproduction_family_kinds() {
  std::vector<PriorKind> kinds;
  for (const ModelFamily& entry : model_families().families()) {
    if (entry.reproduction) kinds.push_back(entry.kind);
  }
  return kinds;
}

void validate_family_model(PriorKind prior, DetectionModelKind model) {
  const ModelFamily& entry = family(prior);
  if (std::find(entry.accepted_models.begin(), entry.accepted_models.end(),
                model) != entry.accepted_models.end()) {
    return;
  }
  throw InvalidArgument("family " + entry.id +
                        " does not accept detection model " + to_string(model) +
                        "; use " + accepted_model_names(entry));
}

void validate_family_gibbs(PriorKind prior,
                           const mcmc::GibbsOptions& gibbs) {
  const ModelFamily& entry = family(prior);
  if (gibbs.vectorized && !entry.supports_vectorized) {
    throw InvalidArgument("family " + entry.id +
                          " does not implement the --vectorized fork");
  }
  if (gibbs.chain_lanes && !entry.supports_chain_lanes) {
    throw InvalidArgument("family " + entry.id +
                          " does not implement the --chain-lanes fork");
  }
}

std::unique_ptr<SrmModel> make_model(PriorKind prior,
                                     DetectionModelKind model,
                                     data::BugCountData data,
                                     const HyperPriorConfig& config,
                                     const mcmc::GibbsOptions& gibbs) {
  validate_family_model(prior, model);
  validate_family_gibbs(prior, gibbs);
  return family(prior).make(model, std::move(data), config, gibbs.vectorized);
}

std::unique_ptr<SrmModel> make_model(PriorKind prior,
                                     DetectionModelKind model,
                                     data::BugCountData data,
                                     const HyperPriorConfig& config) {
  validate_family_model(prior, model);
  return family(prior).make(model, std::move(data), config,
                            /*vectorized=*/false);
}

std::string render_family_table_markdown() {
  std::string table =
      "| Family | Id | Detection models | Hyper-parameters | Identity forks "
      "| Reference |\n"
      "| --- | --- | --- | --- | --- | --- |\n";
  for (const ModelFamily& entry : model_families().families()) {
    table += "| ";
    table += entry.display_name;
    table += " | `";
    table += entry.id;
    table += "` | ";
    for (std::size_t i = 0; i < entry.accepted_models.size(); ++i) {
      if (i != 0) table += ", ";
      table += '`';
      table += to_string(entry.accepted_models[i]);
      table += '`';
    }
    table += " | ";
    for (std::size_t i = 0; i < entry.hyper_parameter_names.size(); ++i) {
      if (i != 0) table += ", ";
      table += '`';
      table += entry.hyper_parameter_names[i];
      table += '`';
    }
    table += " | ";
    if (entry.supports_vectorized && entry.supports_chain_lanes) {
      table += "vectorized, chain-lanes";
    } else if (entry.supports_vectorized) {
      table += "vectorized";
    } else if (entry.supports_chain_lanes) {
      table += "chain-lanes";
    } else {
      table += "scalar only";
    }
    table += " | ";
    table += entry.reference;
    table += " |\n";
  }
  return table;
}

}  // namespace srm::core
