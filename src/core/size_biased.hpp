// The size-biased Bayesian SRM family (Dey-Chakraborty, arXiv:2202.08107;
// multinomial detection extension arXiv:2406.04360), registered as the
// first model family outside the paper's reproduction grid — it lands
// through the ModelFamilyRegistry seam alone (this TU plus one
// registration line in core/model_family.cpp).
//
// Generative structure: each of the N initial bugs carries a latent
// detectability z ~ Gamma(shape, scale) (density ∝ z^{shape-1} e^{-scale z})
// and survives any single testing day with probability e^{-z} — big bugs
// are found first. Bugs still latent at the start of day i are size-biased
// toward small z: their detectability is Gamma(shape, scale + i - 1), so
// the marginal day-i hazard among survivors is
//
//   p_i = 1 - ((scale + i - 1) / (scale + i))^shape,          (decreasing)
//   log q_i = shape * (log(scale + i - 1) - log(scale + i)),
//   Q_k = prod q_i = (scale / (scale + k))^shape              (Lomax tail).
//
// The day counts given N are multinomial over detection days, which
// factorizes into exactly the sequential-binomial likelihood of the
// paper's Eq (2) with this hazard — so the family reuses the Eq (2)
// helpers (core/likelihood.hpp) and the streaming/WAIC machinery intact.
//
// Bug-content layer: N ~ Poisson(lambda0), lambda0 uniform (or Jeffreys)
// on (0, lambda_max). Gibbs conditionals therefore mirror the Poisson
// family's (collapsed and vanilla schemes both supported):
//
//   collapsed: (shape, scale) | x   — slice sampling on the collapsed
//              marginal (lambda0 and R integrated out in closed form),
//              plus an independence-Metropolis mode jump across the
//              shape*log(1 + 1/scale) ridge;
//              lambda0 | zeta, x ~ TruncGamma(s_k + 1, 1 - Q_k);
//              R | lambda0, zeta ~ Poisson(lambda0 * Q_k)      [exact]
//   vanilla:   R, lambda0 | N, and (shape, scale) | N, x in turn.
//
// State vector: [residual, lambda0, shape, scale].
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/detection_models.hpp"
#include "core/model_family.hpp"
#include "data/bug_count_data.hpp"
#include "mcmc/gibbs.hpp"

namespace srm::core {

/// The size-biased multinomial detection model ("multinomial"):
/// parameters (shape, scale), hazard p_i = 1 - ((scale+i-1)/(scale+i))^shape.
/// Only valid under the sizebiased family.
std::unique_ptr<DetectionModel> make_size_biased_detection();

class SizeBiasedSrm final : public SrmModel {
 public:
  /// `model_kind` must be DetectionModelKind::kSizeBiasedMultinomial (the
  /// registry enforces it before construction; the constructor re-checks).
  SizeBiasedSrm(DetectionModelKind model_kind, data::BugCountData data,
                HyperPriorConfig config = {});

  /// Per-chain scratch buffers for a full Gibbs scan; same contract as
  /// BayesianSrm::Workspace (no sampler state, bit-identical draws with or
  /// without one).
  class Workspace final : public mcmc::GibbsWorkspace {
   public:
    explicit Workspace(const SizeBiasedSrm& model);

   private:
    friend class SizeBiasedSrm;
    std::vector<double> zeta;           ///< (shape, scale) under update
    std::vector<double> probe;          ///< zeta with one coordinate probed
    std::vector<double> proposal;       ///< mode-jump candidate
    std::vector<double> probabilities;  ///< p_1..p_k channel
    std::vector<double> log_survivals;  ///< log q_1..log q_k channel
  };

  // --- mcmc::GibbsModel -------------------------------------------------
  [[nodiscard]] std::vector<std::string> parameter_names() const override;
  [[nodiscard]] std::vector<double> initial_state(
      random::Rng& rng) const override;
  [[nodiscard]] std::unique_ptr<mcmc::GibbsWorkspace> make_workspace()
      const override;
  void update(std::vector<double>& state, random::Rng& rng,
              mcmc::GibbsWorkspace* workspace) const override;
  using mcmc::GibbsModel::update;

  // --- core::SrmModel ----------------------------------------------------
  [[nodiscard]] PriorKind family() const override {
    return PriorKind::kSizeBiased;
  }
  [[nodiscard]] std::size_t zeta_offset() const override { return 2; }
  [[nodiscard]] std::size_t state_size() const override {
    return zeta_offset() + model_->parameter_count();
  }
  [[nodiscard]] const DetectionModel& detection_model() const override {
    return *model_;
  }
  [[nodiscard]] const data::BugCountData& data() const override {
    return data_;
  }
  [[nodiscard]] const HyperPriorConfig& config() const override {
    return config_;
  }
  [[nodiscard]] bool is_scan_workspace(
      const mcmc::GibbsWorkspace& workspace) const override;
  void pointwise_row(std::span<const double> state,
                     mcmc::GibbsWorkspace& workspace,
                     std::span<double> out) const override;

  // --- derived quantities ------------------------------------------------
  /// log P(X_i = x_i | state) per observed day (allocating convenience).
  [[nodiscard]] std::vector<double> pointwise_log_likelihood(
      std::span<const double> state) const;

  /// Unnormalized log joint density of (state, data) — prior * likelihood.
  /// Exposed for testing the Gibbs conditionals against brute force.
  [[nodiscard]] double log_joint(std::span<const double> state) const;

 private:
  void update_with(std::vector<double>& state, random::Rng& rng,
                   Workspace& ws) const;
  void update_residual(std::vector<double>& state, random::Rng& rng,
                       double survival) const;
  [[nodiscard]] double stable_survival(std::span<const double> zeta,
                                       Workspace& ws) const;
  void update_lambda0(std::vector<double>& state, random::Rng& rng) const;
  void update_zeta(std::vector<double>& state, random::Rng& rng,
                   Workspace& ws) const;
  void update_lambda0_collapsed(std::vector<double>& state, random::Rng& rng,
                                Workspace& ws) const;
  void update_zeta_collapsed(std::vector<double>& state, random::Rng& rng,
                             Workspace& ws) const;
  [[nodiscard]] std::int64_t initial_bugs_of(
      std::span<const double> state) const;

  std::unique_ptr<DetectionModel> model_;
  data::BugCountData data_;
  HyperPriorConfig config_;
  std::vector<ParameterSupport> zeta_supports_;
};

/// Registers the sizebiased family record (id "sizebiased", detection grid
/// {"multinomial"}, scalar-only capability flags) — the single line the
/// registry bootstrap calls.
void register_size_biased_family(ModelFamilyRegistry& registry);

}  // namespace srm::core
