#include "core/release_policy.hpp"

#include <cmath>
#include <span>

#include "support/error.hpp"

namespace srm::core {

ReleasePlan plan_release(const SrmModel& model, const mcmc::McmcRun& run,
                         std::size_t horizon, const ReleaseCosts& costs) {
  SRM_EXPECTS(horizon >= 1, "plan_release requires horizon >= 1");
  SRM_EXPECTS(costs.cost_per_testing_day > 0.0,
              "testing-day cost must be positive");
  SRM_EXPECTS(costs.cost_per_residual_bug >= 0.0,
              "residual-bug cost must be non-negative");
  SRM_EXPECTS(run.parameter_names().size() == model.state_size(),
              "McmcRun does not match the model's state layout");
  const std::size_t total_samples = run.total_samples();
  SRM_EXPECTS(total_samples >= 1, "run contains no samples");

  const std::size_t today = model.data().days();
  // expected_surviving[h] accumulates E[R * prod_{i=1..h} q_{today+i}].
  std::vector<double> expected_surviving(horizon + 1, 0.0);

  std::vector<double> state(model.state_size());
  for (std::size_t c = 0; c < run.chain_count(); ++c) {
    const auto& chain = run.chain(c);
    for (std::size_t s = 0; s < chain.sample_count(); ++s) {
      for (std::size_t p = 0; p < state.size(); ++p) {
        state[p] = chain.parameter(p)[s];
      }
      const double residual = state[model.residual_index()];
      const auto zeta =
          std::span<const double>(state).subspan(model.zeta_offset());
      double survive = 1.0;
      expected_surviving[0] += residual;
      for (std::size_t h = 1; h <= horizon; ++h) {
        survive *=
            1.0 - model.detection_model().probability(today + h, zeta);
        expected_surviving[h] += residual * survive;
      }
    }
  }
  for (double& v : expected_surviving) {
    v /= static_cast<double>(total_samples);
  }

  ReleasePlan plan;
  plan.schedule.reserve(horizon + 1);
  for (std::size_t h = 0; h <= horizon; ++h) {
    ReleaseDecision decision;
    decision.day = today + h;
    decision.expected_residual = expected_surviving[h];
    decision.expected_cost =
        costs.cost_per_testing_day * static_cast<double>(h) +
        costs.cost_per_residual_bug * expected_surviving[h];
    plan.schedule.push_back(decision);
  }
  plan.best = plan.schedule.front();
  for (const auto& decision : plan.schedule) {
    if (decision.expected_cost < plan.best.expected_cost) {
      plan.best = decision;
    }
  }
  return plan;
}

}  // namespace srm::core
