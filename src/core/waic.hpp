// WAIC — the widely applicable information criterion (Watanabe 2010), the
// paper's model-selection tool (Section 4.1, Eqs 23-25):
//
//   WAIC = T_k + V_k / k
//   T_k  = -(1/k) sum_i log p*(x_i)        (learning loss; p* = posterior
//                                           predictive, estimated by the
//                                           sample mean of p(x_i | omega_s))
//   V_k  = sum_i Var_omega[log p(x_i | omega)]  (functional variance)
//
// Smaller is better. The expectations over omega are computed from the
// retained Gibbs samples.
#pragma once

#include "core/model_family.hpp"
#include "mcmc/trace.hpp"

namespace srm::core {

struct WaicResult {
  /// WAIC on the deviance scale, 2k (T_k + V_k / k) = -2 sum_i log p*(x_i)
  /// + 2 V_k. This is the scale of the paper's Table I: Eq (23) as printed
  /// is an average (O(1) for any k), while the tabulated values grow
  /// linearly with the observation window and sit near 2k times the average
  /// — e.g. 364 at 96 days is 1.9 per point after dividing by 2k.
  double waic = 0.0;
  /// Eq (23) literally: T_k + V_k / k.
  double waic_per_point = 0.0;
  double learning_loss = 0.0;       ///< T_k
  double functional_variance = 0.0; ///< V_k
  std::size_t data_points = 0;      ///< k
  std::size_t samples = 0;          ///< posterior draws used
};

/// Computes WAIC for `model` from the retained samples in `run` (which must
/// have been produced by sampling that same model).
WaicResult compute_waic(const SrmModel& model, const mcmc::McmcRun& run);

}  // namespace srm::core
