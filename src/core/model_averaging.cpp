#include "core/model_averaging.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace srm::core {

AveragedPosterior average_models(
    const std::vector<AveragingCandidate>& candidates) {
  SRM_EXPECTS(!candidates.empty(), "average_models requires candidates");
  const std::size_t data_points = candidates.front().waic.data_points;
  for (const auto& c : candidates) {
    SRM_EXPECTS(c.waic.data_points == data_points,
                "candidates must be fitted on the same data window");
    SRM_EXPECTS(!c.posterior.samples.empty(),
                "candidate '" + c.label + "' has no posterior samples");
  }

  // Akaike-type weights on the deviance-scale WAIC.
  double best = candidates.front().waic.waic;
  for (const auto& c : candidates) best = std::min(best, c.waic.waic);
  AveragedPosterior result;
  double total = 0.0;
  for (const auto& c : candidates) {
    const double w = std::exp(-0.5 * (c.waic.waic - best));
    result.weights.push_back({c.label, w});
    total += w;
  }
  for (auto& w : result.weights) w.weight /= total;

  // Deterministic stratified mixture: allocate a draw budget proportional
  // to each weight (largest-remainder rounding), then take evenly spaced
  // draws from each candidate's pooled samples.
  const std::size_t budget = std::max<std::size_t>(
      candidates.front().posterior.samples.size(), 1000);
  std::vector<std::size_t> allocation(candidates.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t allocated = 0;
  for (std::size_t m = 0; m < candidates.size(); ++m) {
    const double exact = result.weights[m].weight *
                         static_cast<double>(budget);
    allocation[m] = static_cast<std::size_t>(std::floor(exact));
    allocated += allocation[m];
    remainders.push_back({exact - std::floor(exact), m});
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; allocated < budget && i < remainders.size();
       ++i, ++allocated) {
    ++allocation[remainders[i].second];
  }

  result.samples.reserve(budget);
  for (std::size_t m = 0; m < candidates.size(); ++m) {
    const auto& samples = candidates[m].posterior.samples;
    const std::size_t take = allocation[m];
    for (std::size_t j = 0; j < take; ++j) {
      // Evenly spaced strided subsample of the candidate's draws.
      const std::size_t index =
          (j * samples.size() + samples.size() / 2) / std::max<std::size_t>(take, 1);
      result.samples.push_back(samples[std::min(index, samples.size() - 1)]);
    }
  }
  SRM_ENSURES(!result.samples.empty(), "mixture must contain samples");
  result.summary = stats::summarize_integers(result.samples);
  return result;
}

}  // namespace srm::core
