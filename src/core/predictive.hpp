// Posterior-predictive evaluation: fit an SRM on the first m testing days,
// then score how well it predicts the held-out days m+1..k of the same
// series. This operationalizes the paper's notion of "predictive
// performance of the residual number of software bugs" as a proper scoring
// rule instead of a point comparison.
//
// For a posterior sample omega = (N, zeta) the held-out likelihood is the
// sequential product of Eq (1) binomial terms over the held-out days (the
// remaining-bug count is updated with the *observed* held-out counts), and
// the predictive log score is
//   log E_post[ prod_{i>m} P(x_i | omega) ]
// estimated by log-mean-exp over the retained Gibbs draws.
#pragma once

#include <vector>

#include "core/model_family.hpp"
#include "data/bug_count_data.hpp"
#include "mcmc/trace.hpp"

namespace srm::core {

struct PredictiveSummary {
  /// log posterior-predictive mass of the held-out block (higher = better).
  double log_score = 0.0;
  /// Share of posterior draws that are inconsistent with the held-out data
  /// (sampled N smaller than the eventually-observed total). Large values
  /// flag a model that badly underestimates the bug content.
  double inconsistent_fraction = 0.0;
  /// Posterior-predictive mean of the count on day m+1.
  double mean_next_count = 0.0;
  /// E[s_i | data] for each held-out day i = m+1..k.
  std::vector<double> predicted_cumulative;
  std::size_t fit_days = 0;
  std::size_t holdout_days = 0;
};

/// Scores the posterior in `run` (produced by fitting `model`, which was
/// built on the first `fit_days` days of `full`) on the remaining days of
/// `full`. Preconditions: model.data() is exactly full.truncated(fit_days),
/// and full has more days than fit_days.
PredictiveSummary score_holdout(const SrmModel& model,
                                const mcmc::McmcRun& run,
                                const data::BugCountData& full);

/// Convenience: truncate, fit by Gibbs, and score in one call.
PredictiveSummary fit_and_score_holdout(const data::BugCountData& full,
                                        std::size_t fit_days, PriorKind prior,
                                        DetectionModelKind model_kind,
                                        const HyperPriorConfig& config,
                                        const mcmc::GibbsOptions& gibbs);

}  // namespace srm::core
