#include "core/tuning.hpp"

#include <limits>

#include "support/error.hpp"

namespace srm::core {

namespace {

// model1 is the only detection model with a theta parameter; model2's gamma
// bound is symmetric and kept fixed (the paper only mentions tuning
// theta_max among the zeta limits).
bool uses_theta(DetectionModelKind model) {
  return model == DetectionModelKind::kPadgettSpurrier;
}

}  // namespace

TuningResult tune_hyperparameters(const data::BugCountData& observed,
                                  PriorKind prior, DetectionModelKind model,
                                  const TuningGrid& grid,
                                  const mcmc::GibbsOptions& gibbs,
                                  HyperPriorConfig base_config) {
  SRM_EXPECTS(!grid.lambda_max_candidates.empty() &&
                  !grid.alpha_max_candidates.empty() &&
                  !grid.theta_max_candidates.empty(),
              "tuning grid must be non-empty in every dimension");

  // Which hyperprior limit the grid searches is family metadata, not a
  // per-prior special case: the registry record says whether the family's
  // scale is lambda0-like or alpha0-like.
  const TunedScale scale = family(prior).tuned_scale;
  const std::vector<double> prior_candidates =
      scale == TunedScale::kLambdaMax ? grid.lambda_max_candidates
                                      : grid.alpha_max_candidates;
  const std::vector<double> theta_candidates =
      uses_theta(model) ? grid.theta_max_candidates
                        : std::vector<double>{base_config.limits.theta_max};

  TuningResult result;
  double best = std::numeric_limits<double>::infinity();
  for (const double prior_limit : prior_candidates) {
    for (const double theta_max : theta_candidates) {
      HyperPriorConfig config = base_config;
      if (scale == TunedScale::kLambdaMax) {
        config.lambda_max = prior_limit;
      } else {
        config.alpha_max = prior_limit;
      }
      config.limits.theta_max = theta_max;

      const auto srm = make_model(prior, model, observed, config, gibbs);
      const auto run = mcmc::run_gibbs(*srm, gibbs);
      const auto waic = compute_waic(*srm, run);
      result.evaluated.push_back({config, waic});
      if (waic.waic < best) {
        best = waic.waic;
        result.best_config = config;
        result.best_waic = waic;
      }
    }
  }
  return result;
}

}  // namespace srm::core
