#include "core/pointwise.hpp"

#include "runtime/parallel_for.hpp"
#include "support/error.hpp"

namespace srm::core {

support::Matrix pointwise_log_likelihood_matrix(const SrmModel& model,
                                                const mcmc::McmcRun& run) {
  const std::size_t k = model.data().days();
  const std::size_t total_samples = run.total_samples();
  support::Matrix log_terms(k, total_samples);

  // Flattened sample index -> (chain, in-chain sample) via chain offsets.
  std::vector<std::size_t> offsets;
  offsets.reserve(run.chain_count() + 1);
  offsets.push_back(0);
  for (std::size_t c = 0; c < run.chain_count(); ++c) {
    offsets.push_back(offsets.back() + run.chain(c).sample_count());
  }

  // Grain sized for ~one likelihood sweep per scheduling decision batch;
  // chunking is worker-count independent, and every draw writes only its
  // own column, so any schedule produces identical bits.
  constexpr std::size_t kGrain = 32;
  runtime::parallel_for_chunks(
      total_samples, kGrain,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        // One state buffer, workspace and output row per chunk: the inner
        // per-draw evaluation is allocation-free.
        std::vector<double> state(model.state_size());
        const auto workspace = model.make_workspace();
        std::vector<double> pointwise(k);
        std::size_t chain_index = 0;
        for (std::size_t s = lo; s < hi; ++s) {
          while (s >= offsets[chain_index + 1]) ++chain_index;
          const auto& chain = run.chain(chain_index);
          const std::size_t within = s - offsets[chain_index];
          for (std::size_t p = 0; p < state.size(); ++p) {
            state[p] = chain.parameter(p)[within];
          }
          model.pointwise_row(state, *workspace, pointwise);
          for (std::size_t i = 0; i < k; ++i) {
            log_terms(i, s) = pointwise[i];
          }
        }
      });
  return log_terms;
}

}  // namespace srm::core
