#include "core/loo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/pointwise.hpp"
#include "runtime/parallel_for.hpp"
#include "stats/gpd.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace srm::core {

double pareto_smooth_log_weights(std::vector<double>& log_weights) {
  const std::size_t s = log_weights.size();
  SRM_EXPECTS(s >= 5, "need at least 5 importance ratios");

  // Tail size per Vehtari et al.: M = min(0.2 S, 3 sqrt(S)).
  const auto tail_size = static_cast<std::size_t>(std::min(
      std::ceil(0.2 * static_cast<double>(s)),
      std::ceil(3.0 * std::sqrt(static_cast<double>(s)))));
  if (tail_size < 5) return std::numeric_limits<double>::quiet_NaN();

  // Indices sorted by weight; the tail is the largest `tail_size` ratios.
  std::vector<std::size_t> order(s);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return log_weights[a] < log_weights[b];
  });

  const double log_cutoff = log_weights[order[s - tail_size - 1]];
  // Exceedances on the raw-weight scale, relative to the cutoff.
  std::vector<double> exceedances;
  exceedances.reserve(tail_size);
  for (std::size_t j = s - tail_size; j < s; ++j) {
    const double e =
        std::exp(log_weights[order[j]]) - std::exp(log_cutoff);
    exceedances.push_back(std::max(e, 1e-300));
  }
  const auto gpd = stats::fit_generalized_pareto(exceedances);

  // Replace tail weights by expected order statistics of the fitted GPD,
  // truncated at the raw maximum.
  const double raw_max = log_weights[order[s - 1]];
  for (std::size_t j = 0; j < tail_size; ++j) {
    const double p =
        (static_cast<double>(j) + 0.5) / static_cast<double>(tail_size);
    const double smoothed =
        std::exp(log_cutoff) + gpd.quantile(p);
    log_weights[order[s - tail_size + j]] =
        std::min(std::log(smoothed), raw_max);
  }
  return gpd.k();
}

LooResult compute_psis_loo(const SrmModel& model, const mcmc::McmcRun& run) {
  SRM_EXPECTS(run.parameter_names().size() == model.state_size(),
              "McmcRun does not match the model's state layout");
  // Collect log p(x_i | omega_s) for all (i, s), in parallel over draws.
  return compute_psis_loo_from_matrix(
      pointwise_log_likelihood_matrix(model, run));
}

LooResult compute_psis_loo_from_matrix(const support::Matrix& log_lik) {
  const std::size_t k = log_lik.rows();
  const std::size_t total_samples = log_lik.cols();
  SRM_EXPECTS(total_samples >= 25,
              "PSIS-LOO needs a reasonable number of posterior draws");

  LooResult result;
  result.pointwise.resize(k);
  // Each data point's PSIS fit is independent and writes only its own
  // result slot; the summary accumulation below stays serial (and thus
  // deterministic) in data-point order.
  runtime::parallel_for(0, k, [&](std::size_t i) {
    const auto log_lik_row = log_lik.row(i);
    // Raw log ratios r_s = -log p, shifted for stability.
    std::vector<double> log_w(total_samples);
    for (std::size_t s = 0; s < total_samples; ++s) {
      log_w[s] = -log_lik_row[s];
    }
    const double shift = *std::max_element(log_w.begin(), log_w.end());
    for (double& w : log_w) w -= shift;

    const double k_hat = pareto_smooth_log_weights(log_w);
    result.pointwise[i].pareto_k = k_hat;

    // elpd_i = log( sum_s w_s p_s / sum_s w_s ).
    std::vector<double> log_num(total_samples);
    for (std::size_t s = 0; s < total_samples; ++s) {
      log_num[s] = log_w[s] + log_lik_row[s];
    }
    result.pointwise[i].elpd =
        math::log_sum_exp(log_num) - math::log_sum_exp(log_w);
  });
  for (std::size_t i = 0; i < k; ++i) {
    const double k_hat = result.pointwise[i].pareto_k;
    if (std::isfinite(k_hat) && k_hat > kParetoKThreshold) {
      ++result.high_k_count;
    }
    result.elpd_loo += result.pointwise[i].elpd;
  }
  result.looic = -2.0 * result.elpd_loo;
  return result;
}

}  // namespace srm::core
