// The second core/ TU that may be compiled with wider-ISA flags (see
// src/core/CMakeLists.txt): like detection_simd.cpp it runs entirely on
// the support/simd lane layer and keeps its include surface minimal so no
// wider-ISA code can leak into shared inline functions.
#include "core/lane_kernels.hpp"

#include "support/error.hpp"
#include "support/simd/mask.hpp"
#include "support/simd/math.hpp"

namespace srm::core::lane_kernels {

namespace {

using simd::VecD;

static_assert(kChainLanes == simd::kLanes,
              "lane kernels pack exactly one chain per simd lane");

constexpr std::size_t kL = kChainLanes;

// Each kernel walks the days once, one vector op per day whose lanes hold
// the four chains' values. Per-lane carries (the Weibull day-power) and
// accumulators advance vertically, so every lane's sequence of operations
// — and therefore its bits — is the sequence it would see packed alone.

void constant_lanes(std::size_t days, VecD vmu, double* prob, double* lq) {
  const VecD vone = simd::vset1(1.0);
  const VecD vzero = simd::vset1(0.0);
  const VecD vneginf = simd::vset1(-simd::kInf);
  // p and log q are day-invariant: q = 1 - mu, with certain detection
  // (mu >= 1) pinned to -inf exactly as the scalar channel does.
  const VecD vlq = simd::vselect(simd::vge(vmu, vone), vneginf,
                                 simd::log1p(vzero - vmu));
  for (std::size_t i = 0; i < days; ++i) {
    simd::vstore(prob + i * kL, vmu);
    simd::vstore(lq + i * kL, vlq);
  }
}

void padgett_lanes(std::size_t days, VecD vmu, VecD vtheta, double* prob,
                   double* lq) {
  const VecD vone = simd::vset1(1.0);
  const VecD vlog_mu = simd::log(vmu);
  for (std::size_t i = 0; i < days; ++i) {
    // q_i = mu / (theta i + 1) exactly.
    const VecD vden =
        vtheta * simd::vset1(static_cast<double>(i + 1)) + vone;
    simd::vstore(prob + i * kL, vone - vmu / vden);
    simd::vstore(lq + i * kL, vlog_mu - simd::log(vden));
  }
}

void loglogistic_lanes(std::size_t days, VecD vmu, VecD vgamma,
                       std::span<const double> log_day, double* prob,
                       double* lq) {
  const VecD vone = simd::vset1(1.0);
  const VecD vzero = simd::vset1(0.0);
  const VecD vhalf = simd::vset1(0.5);
  const VecD vinf = simd::vset1(simd::kInf);
  const VecD vshift = vone - vgamma;
  const VecD vlog_mu = simd::log(vmu);
  const VecD vone_minus_mu = vone - vmu;
  const VecD vmu_minus_one = vmu - vone;
  for (std::size_t i = 0; i < days; ++i) {
    const VecD e = simd::vset1(log_day[i]) + vshift;
    const VecD t = simd::exp(e * vlog_mu);
    const VecD den = t + vone;
    simd::vstore(prob + i * kL, vone_minus_mu / den);
    // Same blended single-log evaluation of log q = log((t + mu)/(t + 1))
    // as detection_simd.cpp, with mu a lane vector instead of a broadcast:
    // for q <= 1/2 take log(q) directly, for q > 1/2 switch to log1p(s)
    // with s = (mu-1)/(1+t); both share the one log via the log1p
    // correction. A lane whose mu^e overflowed is rescued to the exact
    // q -> 1 limit, lq = 0.
    const VecD q = (t + vmu) / den;
    const VecD s = vmu_minus_one / den;
    const VecD small_q = simd::vlt(q, vhalf);
    const VecD u = simd::vselect(small_q, q, vone + s);
    const VecD corr = simd::vselect(small_q, vzero, (s - (u - vone)) / u);
    VecD vlq = simd::log(u) + corr;
    vlq = simd::vselect(simd::vge(t, vinf), vzero, vlq);
    simd::vstore(lq + i * kL, vlq);
  }
}

void pareto_lanes(std::size_t days, VecD vmu,
                  std::span<const double> exponents, double* prob,
                  double* lq) {
  const VecD vone = simd::vset1(1.0);
  const VecD vlog_mu = simd::log(vmu);
  for (std::size_t i = 0; i < days; ++i) {
    const VecD t = simd::vset1(exponents[i]) * vlog_mu;
    simd::vstore(prob + i * kL, vone - simd::exp(t));
    simd::vstore(lq + i * kL, t);
  }
}

void weibull_lanes(std::size_t days, VecD vmu, VecD vomega,
                   std::span<const double> log_day, double* prob,
                   double* lq) {
  const VecD vone = simd::vset1(1.0);
  const VecD vlog_mu = simd::log(vmu);
  // Day-power carry: prev = 0^omega = 0 for the omega > 0 the support
  // allows; lanes probing outside the support are masked by the caller.
  VecD vprev = simd::vset1(0.0);
  for (std::size_t i = 0; i < days; ++i) {
    const VecD vcur = simd::exp(vomega * simd::vset1(log_day[i]));
    const VecD t = (vcur - vprev) * vlog_mu;
    simd::vstore(prob + i * kL, vone - simd::exp(t));
    simd::vstore(lq + i * kL, t);
    vprev = vcur;
  }
}

void rayleigh_lanes(std::size_t days, VecD vmu, double* prob, double* lq) {
  const VecD vone = simd::vset1(1.0);
  const VecD vlog_mu = simd::log(vmu);
  for (std::size_t i = 0; i < days; ++i) {
    // Hazard exponent 2d - 1 is exact in double for every day count.
    const VecD t =
        simd::vset1(2.0 * static_cast<double>(i + 1) - 1.0) * vlog_mu;
    simd::vstore(prob + i * kL, vone - simd::exp(t));
    simd::vstore(lq + i * kL, t);
  }
}

void learning_curve_lanes(std::size_t days, VecD vmu, VecD vtheta,
                          double* prob, double* lq) {
  const VecD vone = simd::vset1(1.0);
  const VecD vone_minus_mu = vone - vmu;
  for (std::size_t i = 0; i < days; ++i) {
    const VecD vtheta_i =
        vtheta * simd::vset1(static_cast<double>(i + 1));
    simd::vstore(prob + i * kL, vmu * vtheta_i / (vtheta_i + vone));
    // q = (theta i (1 - mu) + 1) / (theta i + 1) exactly.
    simd::vstore(lq + i * kL, simd::log(vtheta_i * vone_minus_mu + vone) -
                                  simd::log1p(vtheta_i));
  }
}

}  // namespace

const char* isa_name() { return simd::kIsaName; }

void detection_lanes(int model_kind, std::size_t days, const double* zeta_soa,
                     std::span<const double> log_day,
                     std::span<const double> pareto_exponent,
                     double* probabilities, double* log_survivals) {
  SRM_EXPECTS(zeta_soa != nullptr && probabilities != nullptr &&
                  log_survivals != nullptr,
              "detection_lanes requires zeta and both channel buffers");
  const VecD z0 = simd::vload(zeta_soa);
  switch (model_kind) {
    case 0:
      constant_lanes(days, z0, probabilities, log_survivals);
      return;
    case 1:
      padgett_lanes(days, z0, simd::vload(zeta_soa + kL), probabilities,
                    log_survivals);
      return;
    case 2:
      SRM_EXPECTS(log_day.size() >= days,
                  "detection_lanes needs log_day for model2");
      loglogistic_lanes(days, z0, simd::vload(zeta_soa + kL), log_day,
                        probabilities, log_survivals);
      return;
    case 3:
      SRM_EXPECTS(pareto_exponent.size() >= days,
                  "detection_lanes needs pareto_exponent for model3");
      pareto_lanes(days, z0, pareto_exponent, probabilities, log_survivals);
      return;
    case 4:
      SRM_EXPECTS(log_day.size() >= days,
                  "detection_lanes needs log_day for model4");
      weibull_lanes(days, z0, simd::vload(zeta_soa + kL), log_day,
                    probabilities, log_survivals);
      return;
    case 5:
      rayleigh_lanes(days, z0, probabilities, log_survivals);
      return;
    case 6:
      learning_curve_lanes(days, z0, simd::vload(zeta_soa + kL),
                           probabilities, log_survivals);
      return;
    default:
      break;
  }
  SRM_EXPECTS(false, "detection_lanes: unknown detection model kind");
}

// The reductions mirror the scalar two-channel kernels of likelihood.cpp
// lane-for-lane, replacing their early returns and `continue`s with masks:
// a `valid` ledger collects the impossible-configuration conditions (final
// result -inf), a per-day `skip` mask zeroes the day's contribution. Data
// branches (x_i == 0, exponent == 0) are lane-invariant — the packed
// chains share one dataset — so they stay scalar per day. Accumulation is
// vertical in day order, so each lane's sum sequence is the scalar loop's.

void collapsed_base_lanes(const LaneDayData& data, const double* probabilities,
                          const double* log_survivals, double* base_out,
                          double* logq_sum_out) {
  SRM_EXPECTS(data.counts != nullptr && data.cumulative != nullptr &&
                  probabilities != nullptr && log_survivals != nullptr,
              "collapsed_base_lanes requires day data and both channels");
  const VecD vzero = simd::vset1(0.0);
  const VecD vone = simd::vset1(1.0);
  const VecD vneg_zero = simd::vset1(-0.0);
  const VecD vneginf = simd::vset1(-simd::kInf);
  VecD total = vzero;
  VecD qsum = vzero;
  VecD valid = simd::veq(vzero, vzero);  // all lanes true
  for (std::size_t i = 0; i < data.days; ++i) {
    const VecD p = simd::vload(probabilities + i * kL);
    const VecD lq = simd::vload(log_survivals + i * kL);
    qsum = qsum + lq;
    const std::int64_t x = data.counts[i];
    const std::int64_t exponent = data.total - data.cumulative[i];
    const VecD p_le0 = simd::vle(p, vzero);
    const VecD q_ninf = simd::veq(lq, vneginf);
    const VecD skip = simd::vor(p_le0, q_ninf);
    VecD x_term;
    if (x != 0) {
      x_term = simd::vset1(static_cast<double>(x)) * simd::log(p);
      valid = simd::vandnot(valid, p_le0);
    } else {
      // Zero-count shortcut with the exact bits of the skipped product:
      // 0 * log(p) is -0.0 for p < 1.
      x_term = simd::vselect(simd::vlt(p, vone), vneg_zero, vzero);
    }
    if (exponent != 0) valid = simd::vandnot(valid, q_ninf);
    const VecD term =
        x_term + simd::vset1(static_cast<double>(exponent)) * lq;
    total = total + simd::vselect(skip, vzero, term);
  }
  simd::vstore(base_out, simd::vselect(valid, total, vneginf));
  simd::vstore(logq_sum_out, qsum);
}

void zeta_kernel_lanes(const LaneDayData& data, const double* initial_bugs,
                       const double* probabilities,
                       const double* log_survivals, double* out) {
  SRM_EXPECTS(data.counts != nullptr && data.cumulative != nullptr &&
                  initial_bugs != nullptr && probabilities != nullptr &&
                  log_survivals != nullptr,
              "zeta_kernel_lanes requires day data, N, and both channels");
  const VecD vzero = simd::vset1(0.0);
  const VecD vone = simd::vset1(1.0);
  const VecD vneg_zero = simd::vset1(-0.0);
  const VecD vneginf = simd::vset1(-simd::kInf);
  const VecD vn = simd::vload(initial_bugs);
  VecD total = vzero;
  VecD valid = simd::vge(vn, simd::vset1(static_cast<double>(data.total)));
  for (std::size_t i = 0; i < data.days; ++i) {
    const VecD p = simd::vload(probabilities + i * kL);
    const VecD lq = simd::vload(log_survivals + i * kL);
    const std::int64_t x = data.counts[i];
    const VecD after =
        vn - simd::vset1(static_cast<double>(data.cumulative[i]));
    const VecD p_le0 = simd::vle(p, vzero);
    const VecD q_ninf = simd::veq(lq, vneginf);
    const VecD skip = simd::vor(p_le0, q_ninf);
    VecD x_term;
    if (x != 0) {
      x_term = simd::vset1(static_cast<double>(x)) * simd::log(p);
      valid = simd::vandnot(valid, p_le0);
    } else {
      x_term = simd::vselect(simd::vlt(p, vone), vneg_zero, vzero);
    }
    // Certain detection is only possible when nothing remains after day i;
    // `after` is per-lane here (each chain carries its own N).
    valid = simd::vandnot(valid, simd::vand(q_ninf, simd::vneq(after, vzero)));
    const VecD term = x_term + after * lq;
    total = total + simd::vselect(skip, vzero, term);
  }
  simd::vstore(out, simd::vselect(valid, total, vneginf));
}

void logq_sum_lanes(std::size_t days, const double* log_survivals,
                    double* out) {
  SRM_EXPECTS(log_survivals != nullptr && out != nullptr,
              "logq_sum_lanes requires the channel and an output");
  VecD qsum = simd::vset1(0.0);
  for (std::size_t i = 0; i < days; ++i) {
    qsum = qsum + simd::vload(log_survivals + i * kL);
  }
  simd::vstore(out, qsum);
}

}  // namespace srm::core::lane_kernels
