#include "core/fit.hpp"

#include <array>
#include <string>
#include <vector>

#include "core/streaming.hpp"
#include "diagnostics/online.hpp"
#include "mcmc/accumulator.hpp"
#include "support/error.hpp"

namespace srm::core {

ExperimentSpec to_experiment_spec(const FitRequest& request) {
  ExperimentSpec spec;
  spec.prior = request.prior;
  spec.model = request.model;
  spec.config = request.config;
  spec.gibbs = request.gibbs;
  spec.observation_days = {request.observation_day};
  spec.eventual_total = request.eventual_total;
  return spec;
}

FitRequest single_cell_request(const ExperimentSpec& spec,
                               std::size_t observation_day) {
  SRM_EXPECTS(observation_day >= 1, "observation day must be >= 1");
  FitRequest request;
  request.prior = spec.prior;
  request.model = spec.model;
  request.config = spec.config;
  request.gibbs = spec.gibbs;
  request.observation_day = observation_day;
  request.eventual_total = spec.eventual_total;
  return request;
}

ObservationResult fit_cell(const data::BugCountData& base,
                           const FitRequest& request) {
  SRM_EXPECTS(request.observation_day >= 1, "observation day must be >= 1");
  const auto observed = dataset_at_observation(base, request.observation_day);

  const auto model_ptr = make_model(request.prior, request.model, observed,
                                    request.config, request.gibbs);
  const SrmModel& model = *model_ptr;

  // Every per-parameter statistic and the residual summary come from these
  // accumulators in both modes; with keep_traces the draws are stored and
  // replayed through them, without it they are fed in-scan. Same sinks,
  // same per-chain order => bit-identical results.
  diagnostics::ParameterStatsAccumulator stats(model.state_size(),
                                               request.gibbs.chain_count,
                                               request.gibbs.iterations);
  ResidualAccumulator residual(model.residual_index(),
                               request.gibbs.chain_count,
                               request.gibbs.iterations);

  ObservationResult result;
  result.observation_day = request.observation_day;
  result.detected_so_far = observed.total();
  result.actual_residual = request.eventual_total - observed.total();

  std::vector<std::string> names;
  if (request.gibbs.keep_traces) {
    // Stored-trace mode: sample, then replay the traces through the sinks
    // and score the pointwise matrix (the memory-heavy comparator path).
    const auto run = mcmc::run_gibbs(model, request.gibbs);
    names = run.parameter_names();
    const std::array<mcmc::PosteriorAccumulator*, 2> sinks{&stats, &residual};
    mcmc::replay(run, sinks);
    result.waic = compute_waic(model, run);
  } else {
    // Streaming mode: the scorer consumes each draw's fresh workspace
    // buffers in-scan; no traces, no pointwise matrix, no second
    // likelihood pass.
    StreamingScorer scorer(model, request.gibbs.chain_count,
                           request.gibbs.iterations);
    const std::array<mcmc::PosteriorAccumulator*, 3> sinks{&scorer, &stats,
                                                           &residual};
    const auto run = mcmc::run_gibbs(model, request.gibbs, sinks);
    names = run.parameter_names();
    result.waic = scorer.waic();
  }
  result.posterior = residual.finalize();

  for (std::size_t p = 0; p < names.size(); ++p) {
    const auto online = stats.parameter(p);
    ParameterDiagnostics diag;
    diag.name = names[p];
    diag.posterior_mean = online.posterior_mean;
    diag.ess = online.ess;
    diag.psrf = online.psrf;
    diag.geweke_z = online.geweke_z;
    result.diagnostics.push_back(std::move(diag));
  }
  return result;
}

}  // namespace srm::core
