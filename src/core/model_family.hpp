// The model-family registry: one declarative record per Bayesian SRM
// family (prior structure x detection likelihood), bundling everything the
// outer layers used to hard-code per family —
//
//   * construction: a factory returning the family's SrmModel (a
//     mcmc::GibbsModel with the scoring/prediction channels the estimation
//     pipeline needs), plus capability flags for the --vectorized and
//     --chain-lanes result-identity forks;
//   * parameter metadata: hyper-parameter names and which hyperprior limit
//     the WAIC tuning grid searches;
//   * canonical serialization identity: the stable id string used by the
//     artifact layer, CLI flags and the serve protocol;
//   * presentation: report table titles, display names and the reference
//     shown in the generated README model table;
//   * the per-family detection-model grid for `select`/`sweep` and the
//     superset of detection kinds the family accepts at all.
//
// Every switch/if-chain over PriorKind/DetectionModelKind outside src/core/
// is banned (srm-lint rule `family-dispatch`): mle/, report/, artifact/,
// cli/ and serve/ consult the registry instead, so a new family lands by
// writing one core TU and one registration line — see core/size_biased.cpp
// for the proof.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/detection_models.hpp"
#include "data/bug_count_data.hpp"
#include "mcmc/gibbs.hpp"

namespace srm::core {

/// Registry key of a model family. The enum survives only as that key (and
/// as the typed field of specs); everything known *about* a family lives in
/// its ModelFamily record.
enum class PriorKind {
  kPoisson,           ///< NHPP-based SRM (Rallis-Lansdowne)
  kNegativeBinomial,  ///< NHMPP-based SRM (heterogeneous Chun)
  kSizeBiased,        ///< size-biased bug content (Dey-Chakraborty)
};

/// Gibbs blocking scheme.
///
/// kVanilla follows the paper's Eqs (14)-(22) literally: R, the
/// hyperparameters, and zeta each conditioned on everything else. R and the
/// prior scale (lambda0 / beta0) are strongly coupled, so the vanilla chain
/// mixes slowly when the survival product prod q_i is not small.
///
/// kCollapsed marginalizes R out of every other conditional (the sums over
/// R have closed forms; see DESIGN.md) and draws R last from its exact
/// conditional — the same invariant posterior with near-iid mixing. Both
/// schemes are verified to agree in tests/integration/.
enum class SamplerScheme {
  kCollapsed,  ///< default
  kVanilla,
};

/// Stable family id ("poisson" / "negbin" / "sizebiased") — the registry
/// record's id string, used by the CLI, the serve protocol and the
/// canonical artifact serialization.
std::string to_string(PriorKind prior);

/// Inverse of to_string(PriorKind); nullopt for unknown names.
std::optional<PriorKind> prior_kind_from_string(const std::string& name);

/// "collapsed" / "vanilla".
std::string to_string(SamplerScheme scheme);

/// Inverse of to_string(SamplerScheme); nullopt for unknown names.
std::optional<SamplerScheme> sampler_scheme_from_string(
    const std::string& name);

/// Upper limits of the uniform hyperpriors — the quantities the paper tunes
/// by WAIC minimization (Section 5.1) — plus the optional Jeffreys variant
/// for lambda0 flagged as future work in Section 6.
struct HyperPriorConfig {
  double lambda_max = 2000.0;  ///< support of lambda0 (Poisson prior)
  double alpha_max = 100.0;    ///< support of alpha0 (NB prior)
  DetectionModelLimits limits{};
  /// Replace the Uniform(0, lambda_max) hyperprior on lambda0 with the
  /// Jeffreys prior for a Poisson rate, pi(lambda) ∝ lambda^{-1/2}
  /// (truncated to the same support). Ablation for the paper's Section 6.
  bool jeffreys_lambda0 = false;
  /// Gibbs blocking scheme; see SamplerScheme.
  SamplerScheme scheme = SamplerScheme::kCollapsed;
};

/// A fitted-family model: the Gibbs-sampleable state plus the channels the
/// estimation pipeline consumes downstream of the sampler — pointwise
/// log-likelihood rows (WAIC/LOO/streaming scoring), the state-vector
/// layout (residual slot, detection-parameter block), and the detection
/// model for out-of-window prediction. BayesianSrm and SizeBiasedSrm are
/// the registered implementations.
class SrmModel : public mcmc::GibbsModel {
 public:
  /// Registry key of the family this model belongs to.
  [[nodiscard]] virtual PriorKind family() const = 0;

  [[nodiscard]] virtual const data::BugCountData& data() const = 0;
  [[nodiscard]] virtual const HyperPriorConfig& config() const = 0;

  // --- state-vector layout ------------------------------------------------
  /// Index of the residual bug count R in the state vector.
  [[nodiscard]] virtual std::size_t residual_index() const { return 0; }
  /// Index of the first detection-model parameter.
  [[nodiscard]] virtual std::size_t zeta_offset() const = 0;
  [[nodiscard]] virtual std::size_t state_size() const = 0;

  /// The family's detection model; probability(day, zeta) extrapolates past
  /// the fitted window for holdout scoring and release planning.
  [[nodiscard]] virtual const DetectionModel& detection_model() const = 0;

  /// True when `workspace` came from this model's make_workspace() — i.e.
  /// pointwise_row may consume it. Streaming sinks receive whatever
  /// workspace the sampler ran with (possibly a lane pack) and fall back to
  /// their own per-chain workspace when this says no.
  [[nodiscard]] virtual bool is_scan_workspace(
      const mcmc::GibbsWorkspace& workspace) const = 0;

  /// Fills out[i-1] = log P(X_i = x_i | state) for day i = 1..data().days()
  /// — the WAIC/LOO ingredient. `workspace` must satisfy
  /// is_scan_workspace(); the fill is allocation-free and bit-identical for
  /// any workspace history (streaming scoring and stored-trace replay score
  /// through this same call).
  virtual void pointwise_row(std::span<const double> state,
                             mcmc::GibbsWorkspace& workspace,
                             std::span<double> out) const = 0;
};

/// Which hyperprior limit the WAIC tuning grid searches for this family.
enum class TunedScale {
  kLambdaMax,  ///< families with a lambda0-style rate hyperparameter
  kAlphaMax,   ///< families with an alpha0-style shape hyperparameter
};

/// One registered model family. Records are immutable after registration;
/// registration order is presentation order (tables, help text, select
/// grids).
struct ModelFamily {
  PriorKind kind;
  std::string id;            ///< stable identity: CLI, serve, artifacts
  std::string display_name;  ///< "Poisson (NHPP)" — README / docs label
  std::string table_title;   ///< report section title, e.g. "(i) Poisson prior."
  std::string summary;       ///< one-line description for --help and docs
  std::string reference;     ///< citation shown in the generated model table
  /// Member of the paper's reproduction grid (the default sweep).
  bool reproduction = false;
  /// Detection kinds in this family's `select`/`sweep` grid, in column
  /// order.
  std::vector<DetectionModelKind> selection_models;
  /// Every detection kind the family accepts (superset of
  /// selection_models).
  std::vector<DetectionModelKind> accepted_models;
  /// Detection kind used when a request names the family but no model.
  DetectionModelKind default_model = DetectionModelKind::kConstant;
  /// State-vector names between the residual slot and the zeta block.
  std::vector<std::string> hyper_parameter_names;
  /// Which hyperprior limit the tuning grid searches.
  TunedScale tuned_scale = TunedScale::kLambdaMax;
  /// Result-identity forks the family's sampler implements. Requests that
  /// set a fork the family lacks are rejected up front — never silently
  /// run un-forked under a forked spec hash.
  bool supports_vectorized = false;
  bool supports_chain_lanes = false;
  /// Constructs the family's model for one estimation cell.
  std::unique_ptr<SrmModel> (*make)(DetectionModelKind model,
                                    data::BugCountData data,
                                    const HyperPriorConfig& config,
                                    bool vectorized) = nullptr;
};

/// The registry. Instantiable for tests; library code uses the process
/// registry via model_families() / family() / find_family().
class ModelFamilyRegistry {
 public:
  /// Registers a family. Throws support::InvalidArgument on a duplicate id
  /// or kind, an empty id/table title, a missing factory, or a
  /// selection_models entry absent from accepted_models.
  void add(ModelFamily family);

  /// All families in registration order.
  [[nodiscard]] const std::vector<ModelFamily>& families() const {
    return families_;
  }

  /// Record for a kind. Throws support::InvalidArgument for a kind that
  /// was never registered.
  [[nodiscard]] const ModelFamily& family(PriorKind kind) const;

  /// Record whose id equals `id`, or nullptr.
  [[nodiscard]] const ModelFamily* find(std::string_view id) const;

  /// The process-wide registry: the reproduction families in paper order,
  /// then the library extensions.
  static const ModelFamilyRegistry& instance();

 private:
  std::vector<ModelFamily> families_;
};

/// instance() shorthand.
const ModelFamilyRegistry& model_families();

/// Registry record for `kind` (process registry).
const ModelFamily& family(PriorKind kind);

/// Registry record by id string, or nullptr (process registry).
const ModelFamily* find_family(std::string_view id);

/// Registered ids joined with `separator` — error/help text listing the
/// accepted family names ("poisson|negbin|sizebiased").
std::string family_ids_joined(char separator = '|');

/// Kinds of the reproduction families, in registration order — the default
/// sweep grid.
std::vector<PriorKind> reproduction_family_kinds();

/// Throws support::InvalidArgument unless `family` accepts `model`; the
/// message lists the family's accepted detection-model names.
void validate_family_model(PriorKind family, DetectionModelKind model);

/// Throws support::InvalidArgument when `gibbs` requests a result-identity
/// fork (vectorized / chain_lanes) the family does not implement.
void validate_family_gibbs(PriorKind family, const mcmc::GibbsOptions& gibbs);

/// Constructs the family's model after validate_family_model /
/// validate_family_gibbs; the single construction path for fit/select/
/// sweep/serve cells.
std::unique_ptr<SrmModel> make_model(PriorKind family,
                                     DetectionModelKind model,
                                     data::BugCountData data,
                                     const HyperPriorConfig& config,
                                     const mcmc::GibbsOptions& gibbs);

/// Overload for callers without Gibbs options (scalar, no identity forks).
std::unique_ptr<SrmModel> make_model(PriorKind family,
                                     DetectionModelKind model,
                                     data::BugCountData data,
                                     const HyperPriorConfig& config);

/// Renders the registry as the Markdown model table embedded in README.md
/// (`srm_cli families --format markdown` emits it; a docs test pins the
/// README copy to this output).
std::string render_family_table_markdown();

}  // namespace srm::core
