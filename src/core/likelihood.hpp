// The discrete-time SRM likelihood of Section 2.1.
//
// Eq (1): X_i | (N - s_{i-1} remaining, p_i) ~ Binomial(N - s_{i-1}, p_i).
// Eq (2): the joint pmf factorizes over testing days; its dependence on N is
//         N! / (N - s_k)! * prod_i q_i^{N - s_i}.
//
// Everything is computed in the log domain; -inf is returned for impossible
// configurations (e.g. N < s_k) rather than throwing, because the Gibbs
// conditionals legitimately probe the support boundary.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/bug_count_data.hpp"

namespace srm::core {

/// log P(X_i = x_i | N, p) for 1-based day i — the pointwise term Eq (1),
/// used by both the likelihood and the WAIC computation.
double log_pointwise_likelihood(const data::BugCountData& data,
                                std::size_t day, std::int64_t initial_bugs,
                                std::span<const double> probabilities);

/// log of Eq (2): joint log-likelihood of the whole series given the
/// initial bug content N and the day-detection probabilities p_1..p_k.
/// Returns -inf when N < s_k or when any needed probability is degenerate.
double log_likelihood(const data::BugCountData& data,
                      std::int64_t initial_bugs,
                      std::span<const double> probabilities);

/// The N-dependent part of Eq (2) only:
///   log [ N! / (N - s_k)! ] + N * sum_i log q_i   (additive constants in N
/// dropped). This is what the Gibbs conditionals of N and of the
/// hyperparameters need; it is cheaper than the full likelihood.
double log_likelihood_n_kernel(const data::BugCountData& data,
                               std::int64_t initial_bugs,
                               std::span<const double> probabilities);

/// The zeta-dependent part of Eq (2) for fixed N:
///   sum_i [ x_i log p_i + (N - s_i) log q_i ].
/// Used by the slice-sampling conditional of the detection parameters.
double log_likelihood_zeta_kernel(const data::BugCountData& data,
                                  std::int64_t initial_bugs,
                                  std::span<const double> probabilities);

/// Overload taking precomputed stable log q_i values (from
/// DetectionModel::log_survivals) — required for power-form hazards whose
/// q_i underflow double precision; see DetectionModel::log_survival.
double log_likelihood_zeta_kernel(const data::BugCountData& data,
                                  std::int64_t initial_bugs,
                                  std::span<const double> probabilities,
                                  std::span<const double> log_survivals);

/// The zeta-dependent factor of Eq (2) with the residual count marginalized
/// out (shared by both priors' collapsed Gibbs conditionals):
///   sum_i [ x_i log p_i + (s_k - s_i) log q_i ].
/// Derivation: summing the joint over R = N - s_k >= 0 leaves
/// prod_i p_i^{x_i} q_i^{s_k - s_i} times a prior-specific factor of
/// Q = prod q_i (e^{lambda0 Q} for the Poisson prior,
/// (1-(1-beta0)Q)^{-(s_k+alpha0)} for the negative binomial prior).
double log_likelihood_collapsed_base(const data::BugCountData& data,
                                     std::span<const double> probabilities);

/// Overload taking precomputed stable log q_i values.
double log_likelihood_collapsed_base(const data::BugCountData& data,
                                     std::span<const double> probabilities,
                                     std::span<const double> log_survivals);

/// sum_i log(1 - p_i); -inf if any p_i = 1.
double log_survival_product(std::span<const double> probabilities);

/// prod_i (1 - p_i) — the survival factor that drives both conjugate
/// posteriors (Propositions 1 and 2). Computed in the log domain.
double survival_product(std::span<const double> probabilities);

}  // namespace srm::core
