// Pseudo-Bayesian model averaging over a set of fitted SRMs.
//
// Instead of committing to the single WAIC winner (the paper's Section 5
// procedure), combine the candidate models' residual-bug posteriors with
// Akaike-type weights
//   w_m ∝ exp(-(WAIC_m - min_m WAIC) / 2),
// the "pseudo-BMA" rule of Yao-Vehtari-Simpson-Gelman (2018) applied to
// the deviance-scale WAIC. The averaged posterior is the w-mixture of the
// per-model posterior samples; when one model dominates (as model1 does on
// SYS1) the average reproduces the selection result, and when models are
// close it hedges between them instead of flip-flopping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/posterior.hpp"
#include "core/waic.hpp"

namespace srm::core {

struct AveragingCandidate {
  std::string label;             ///< e.g. "poisson/model1"
  WaicResult waic;
  ResidualPosterior posterior;
};

struct ModelWeight {
  std::string label;
  double weight = 0.0;
};

struct AveragedPosterior {
  std::vector<ModelWeight> weights;   ///< same order as the candidates
  stats::IntegerSampleSummary summary; ///< of the weighted mixture
  /// Mixture draws (each candidate's samples resampled in proportion to
  /// its weight, deterministically by largest remainders).
  std::vector<std::int64_t> samples;
};

/// Computes pseudo-BMA weights from the candidates' WAICs and mixes their
/// residual posteriors. Candidates must be fits of the *same data window*
/// (their WAICs must be comparable); at least one candidate is required.
AveragedPosterior average_models(
    const std::vector<AveragingCandidate>& candidates);

}  // namespace srm::core
