#include "core/likelihood.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/math.hpp"

namespace srm::core {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double log_pointwise_likelihood(const data::BugCountData& data,
                                std::size_t day, std::int64_t initial_bugs,
                                std::span<const double> probabilities) {
  SRM_EXPECTS(day >= 1 && day <= data.days(), "day out of range");
  SRM_EXPECTS(probabilities.size() >= data.days(),
              "need a probability for every testing day");
  const std::int64_t remaining_before =
      initial_bugs - data.cumulative_through(day - 1);
  const std::int64_t x = data.count_on_day(day);
  if (remaining_before < x || x < 0) return kNegInf;
  const double p = probabilities[day - 1];
  if (p <= 0.0) return x == 0 ? 0.0 : kNegInf;
  if (p >= 1.0) return x == remaining_before ? 0.0 : kNegInf;
  return math::log_binomial(remaining_before, x) +
         static_cast<double>(x) * std::log(p) +
         static_cast<double>(remaining_before - x) * std::log1p(-p);
}

double log_likelihood(const data::BugCountData& data,
                      std::int64_t initial_bugs,
                      std::span<const double> probabilities) {
  SRM_EXPECTS(probabilities.size() >= data.days(),
              "need a probability for every testing day");
  double total = 0.0;
  for (std::size_t day = 1; day <= data.days(); ++day) {
    total += log_pointwise_likelihood(data, day, initial_bugs, probabilities);
    if (total == kNegInf) return kNegInf;
  }
  return total;
}

double log_likelihood_n_kernel(const data::BugCountData& data,
                               std::int64_t initial_bugs,
                               std::span<const double> probabilities) {
  SRM_EXPECTS(probabilities.size() >= data.days(),
              "need a probability for every testing day");
  const std::int64_t s_k = data.total();
  if (initial_bugs < s_k) return kNegInf;
  double log_q_sum = 0.0;
  for (std::size_t i = 0; i < data.days(); ++i) {
    const double q = 1.0 - probabilities[i];
    if (q <= 0.0) {
      // p_i = 1 forces all remaining bugs found on day i; the kernel is only
      // finite if nothing remains after day i.
      if (initial_bugs != data.cumulative()[i]) return kNegInf;
      continue;
    }
    log_q_sum += std::log(q);
  }
  // log N!/(N-s_k)! + N sum log q_i, dropping terms constant in N. Note
  // sum_i (N - s_i) log q_i = N sum log q_i - sum s_i log q_i; the second
  // term is constant in N.
  return math::log_factorial(initial_bugs) -
         math::log_factorial(initial_bugs - s_k) +
         static_cast<double>(initial_bugs) * log_q_sum;
}

double log_likelihood_zeta_kernel(const data::BugCountData& data,
                                  std::int64_t initial_bugs,
                                  std::span<const double> probabilities) {
  SRM_EXPECTS(probabilities.size() >= data.days(),
              "need a probability for every testing day");
  if (initial_bugs < data.total()) return kNegInf;
  double total = 0.0;
  const auto cumulative = data.cumulative();
  const auto counts = data.counts();
  for (std::size_t i = 0; i < data.days(); ++i) {
    const double p = probabilities[i];
    const std::int64_t x = counts[i];
    const std::int64_t after = initial_bugs - cumulative[i];
    if (p <= 0.0) {
      if (x != 0) return kNegInf;
      continue;
    }
    if (p >= 1.0) {
      if (after != 0) return kNegInf;
      continue;
    }
    total += static_cast<double>(x) * std::log(p) +
             static_cast<double>(after) * std::log1p(-p);
  }
  return total;
}

double log_likelihood_zeta_kernel(const data::BugCountData& data,
                                  std::int64_t initial_bugs,
                                  std::span<const double> probabilities,
                                  std::span<const double> log_survivals) {
  SRM_EXPECTS(probabilities.size() >= data.days() &&
                  log_survivals.size() >= data.days(),
              "need probability and log-survival for every testing day");
  if (initial_bugs < data.total()) return kNegInf;
  double total = 0.0;
  const auto cumulative = data.cumulative();
  const auto counts = data.counts();
  for (std::size_t i = 0; i < data.days(); ++i) {
    const double p = probabilities[i];
    const double log_q = log_survivals[i];
    const std::int64_t x = counts[i];
    const std::int64_t after = initial_bugs - cumulative[i];
    if (p <= 0.0) {
      // Certain survival: q = 1 contributes nothing; x must be 0.
      if (x != 0) return kNegInf;
      continue;
    }
    if (log_q == kNegInf) {
      // Certain detection: everything must be found by day i.
      if (after != 0) return kNegInf;
      continue;
    }
    // log(p) dominates the loop and is pointless on zero-count days (the
    // virtual-testing extension appends many); skip it, substituting the
    // exact bits of the skipped product: 0 * log(p) is -0.0 for p < 1.
    const double x_term = x != 0
                              ? static_cast<double>(x) * std::log(p)
                              : (p < 1.0 ? -0.0 : 0.0);
    total += x_term + static_cast<double>(after) * log_q;
  }
  return total;
}

double log_likelihood_collapsed_base(const data::BugCountData& data,
                                     std::span<const double> probabilities) {
  SRM_EXPECTS(probabilities.size() >= data.days(),
              "need a probability for every testing day");
  const std::int64_t s_k = data.total();
  const auto cumulative = data.cumulative();
  const auto counts = data.counts();
  double total = 0.0;
  for (std::size_t i = 0; i < data.days(); ++i) {
    const double p = probabilities[i];
    const std::int64_t x = counts[i];
    const std::int64_t exponent = s_k - cumulative[i];
    if (p <= 0.0) {
      if (x != 0) return kNegInf;
      continue;
    }
    if (p >= 1.0) {
      if (exponent != 0) return kNegInf;
      // q_i^0 = 1; the p_i^{x_i} factor is 1^{x_i} = 1.
      continue;
    }
    total += static_cast<double>(x) * std::log(p) +
             static_cast<double>(exponent) * std::log1p(-p);
  }
  return total;
}

double log_likelihood_collapsed_base(const data::BugCountData& data,
                                     std::span<const double> probabilities,
                                     std::span<const double> log_survivals) {
  SRM_EXPECTS(probabilities.size() >= data.days() &&
                  log_survivals.size() >= data.days(),
              "need probability and log-survival for every testing day");
  const std::int64_t s_k = data.total();
  const auto cumulative = data.cumulative();
  const auto counts = data.counts();
  double total = 0.0;
  for (std::size_t i = 0; i < data.days(); ++i) {
    const double p = probabilities[i];
    const double log_q = log_survivals[i];
    const std::int64_t x = counts[i];
    const std::int64_t exponent = s_k - cumulative[i];
    if (p <= 0.0) {
      if (x != 0) return kNegInf;
      continue;
    }
    if (log_q == kNegInf) {
      if (exponent != 0) return kNegInf;
      continue;
    }
    // Same zero-count shortcut (and -0.0 bit preservation) as the zeta
    // kernel above.
    const double x_term = x != 0
                              ? static_cast<double>(x) * std::log(p)
                              : (p < 1.0 ? -0.0 : 0.0);
    total += x_term + static_cast<double>(exponent) * log_q;
  }
  return total;
}

double log_survival_product(std::span<const double> probabilities) {
  double log_product = 0.0;
  for (const double p : probabilities) {
    SRM_EXPECTS(p >= 0.0 && p <= 1.0, "probabilities must lie in [0, 1]");
    if (p >= 1.0) return kNegInf;
    log_product += std::log1p(-p);
  }
  return log_product;
}

double survival_product(std::span<const double> probabilities) {
  return std::exp(log_survival_product(probabilities));
}

}  // namespace srm::core
