// Hyperparameter tuning by WAIC minimization (Section 5.1: "the
// hyperparameters (upper limits of the uniform distributions) lambda_max,
// theta_max, alpha_max are determined so as to minimize WAIC").
//
// The tuner evaluates a small grid of candidate upper limits at a reference
// observation day and returns the configuration with the smallest WAIC.
#pragma once

#include <vector>

#include "core/bayes_srm.hpp"
#include "core/waic.hpp"
#include "data/bug_count_data.hpp"
#include "mcmc/gibbs.hpp"

namespace srm::core {

struct TuningGrid {
  std::vector<double> lambda_max_candidates{500.0, 1000.0, 2000.0, 4000.0};
  std::vector<double> alpha_max_candidates{10.0, 50.0, 100.0, 200.0};
  std::vector<double> theta_max_candidates{1.0, 5.0, 10.0, 50.0};
};

struct TuningEntry {
  HyperPriorConfig config;
  WaicResult waic;
};

struct TuningResult {
  HyperPriorConfig best_config;
  WaicResult best_waic;
  std::vector<TuningEntry> evaluated;  ///< full grid, in evaluation order
};

/// Grid-searches the upper limits relevant to (prior, model) and returns
/// the WAIC-minimizing configuration. Limits irrelevant to the combination
/// (e.g. theta_max for model0) keep their defaults from `base_config`.
TuningResult tune_hyperparameters(const data::BugCountData& observed,
                                  PriorKind prior, DetectionModelKind model,
                                  const TuningGrid& grid,
                                  const mcmc::GibbsOptions& gibbs,
                                  HyperPriorConfig base_config = {});

}  // namespace srm::core
