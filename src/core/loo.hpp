// PSIS-LOO: Pareto-smoothed importance-sampling leave-one-out
// cross-validation (Vehtari, Gelman & Gabry 2017) — the modern companion
// of the WAIC the paper uses for model selection (Watanabe 2010 proves
// their asymptotic equivalence; this module lets users check the agreement
// on finite data).
//
// For each data point i the LOO predictive density is estimated by
// importance sampling from the full posterior with ratios
// r_s = 1 / p(x_i | omega_s); the largest 20% of the ratios are replaced by
// quantiles of a generalized Pareto fit (tail smoothing), and the fitted
// shape k-hat per point diagnoses the estimate's reliability (k < 0.7 is
// the standard "ok" threshold).
#pragma once

#include <vector>

#include "core/model_family.hpp"
#include "mcmc/trace.hpp"
#include "support/matrix.hpp"

namespace srm::core {

struct LooPointwise {
  double elpd = 0.0;      ///< log LOO predictive density of point i
  double pareto_k = 0.0;  ///< GPD shape diagnostic for point i
};

struct LooResult {
  double elpd_loo = 0.0;  ///< sum of pointwise elpd (higher = better)
  double looic = 0.0;     ///< -2 elpd_loo, comparable to the paper's WAIC scale
  std::vector<LooPointwise> pointwise;
  std::size_t high_k_count = 0;  ///< points with k-hat > 0.7
};

/// The k-hat reliability threshold of Vehtari et al.
inline constexpr double kParetoKThreshold = 0.7;

/// Computes PSIS-LOO for `model` from the retained samples in `run`.
LooResult compute_psis_loo(const SrmModel& model, const mcmc::McmcRun& run);

/// PSIS-LOO from a pre-built pointwise log-likelihood matrix (rows = data
/// points, columns = draws) — the entry point the streaming pipeline uses
/// with StreamingScorer::log_likelihood_matrix(), bit-identical to the
/// stored-trace overload above.
LooResult compute_psis_loo_from_matrix(const support::Matrix& log_lik);

/// Pareto-smooths a vector of raw log importance ratios in place and
/// returns the fitted GPD shape (NaN when the tail is too short to fit).
/// Exposed for testing.
double pareto_smooth_log_weights(std::vector<double>& log_weights);

}  // namespace srm::core
