// The virtual-testing experiment protocol of Section 5.1, as a reusable
// driver: for each observation point d in {48, 67, 86, 96, 106, ...}
//   * take the real series truncated at min(d, last real day),
//   * append zero-count days up to d (the "virtual testing" hypothesis that
//     no bug is found after release),
//   * fit the requested Bayesian SRM by Gibbs sampling,
//   * record the residual-bug posterior summary, WAIC, and the convergence
//     diagnostics (PSRF and Geweke) for every sampled parameter.
//
// Every table and figure of the paper's evaluation is a projection of the
// ExperimentResult grid produced here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/model_family.hpp"
#include "core/posterior.hpp"
#include "core/waic.hpp"
#include "data/bug_count_data.hpp"
#include "mcmc/gibbs.hpp"

namespace srm::core {

struct ParameterDiagnostics {
  std::string name;
  double psrf = 0.0;       ///< Gelman-Rubin (needs >= 2 chains)
  double geweke_z = 0.0;   ///< chain-0 Geweke statistic
  double ess = 0.0;        ///< pooled effective sample size
  double posterior_mean = 0.0;
};

struct ObservationResult {
  std::size_t observation_day = 0;
  std::int64_t detected_so_far = 0;   ///< s at the observation point
  std::int64_t actual_residual = 0;   ///< total bugs - detected_so_far
  WaicResult waic;
  ResidualPosterior posterior;
  std::vector<ParameterDiagnostics> diagnostics;
};

struct ExperimentSpec {
  PriorKind prior = PriorKind::kPoisson;
  DetectionModelKind model = DetectionModelKind::kConstant;
  HyperPriorConfig config{};
  mcmc::GibbsOptions gibbs{};
  /// Observation days; days beyond the series length are virtual.
  std::vector<std::size_t> observation_days;
  /// Ground-truth eventual bug total (for "actual residual" columns).
  std::int64_t eventual_total = 0;
};

/// Persistence hook for experiment drivers (run_experiment, run_sweep):
/// lets already-computed observation cells be replayed from a store instead
/// of re-sampled, and streams freshly computed cells out as they finish.
/// The artifact layer (src/artifact/ArtifactStore) is the production
/// implementation; tests install counting fakes.
class ObservationStore {
 public:
  /// Scheduling decision for one (spec, observation day) cell.
  enum class Plan {
    kCompute,  ///< sample the cell and report it via on_computed()
    kReuse,    ///< use the stored result filled into `reuse_out`
    kSkip,     ///< leave the cell unfilled (budget exhausted / partial run)
  };

  virtual ~ObservationStore() = default;

  /// Called serially, in grid layout order, before any sampling starts.
  /// Returning kReuse requires `reuse_out` to be fully populated.
  virtual Plan plan(const ExperimentSpec& spec, std::size_t observation_day,
                    ObservationResult& reuse_out) = 0;

  /// Called once per kCompute cell when its sampling finishes. May be
  /// invoked from a worker thread; implementations must be thread-safe.
  virtual void on_computed(const ExperimentSpec& spec,
                           std::size_t observation_day,
                           const ObservationResult& result) = 0;
};

/// The dataset as seen at one observation day (truncate + zero-pad).
data::BugCountData dataset_at_observation(const data::BugCountData& base,
                                          std::size_t observation_day);

/// Runs one (prior, model) SRM across all observation days. With a store,
/// each day is planned through it first: kReuse days replay the stored
/// result bit-identically (no sampling), kSkip days are omitted from the
/// returned vector, and freshly computed days are reported back.
std::vector<ObservationResult> run_experiment(const data::BugCountData& base,
                                              const ExperimentSpec& spec,
                                              ObservationStore* store = nullptr);

/// Runs a single observation day; exposed for tests and examples.
ObservationResult run_observation(const data::BugCountData& base,
                                  const ExperimentSpec& spec,
                                  std::size_t observation_day);

}  // namespace srm::core
