// Posterior summaries of the residual bug count from an MCMC run — the
// statistics the paper tabulates (mean, median, mode, standard deviation;
// Tables II-V) and the box-plot five-number summaries (Figs 2-3).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "mcmc/trace.hpp"
#include "stats/summary.hpp"

namespace srm::core {

struct ResidualPosterior {
  stats::IntegerSampleSummary summary;      ///< mean/sd/median/mode/min/max
  stats::FiveNumberSummary box;             ///< for box plots
  std::vector<std::int64_t> samples;        ///< pooled residual draws

  /// Central credible interval at the given level (e.g. 0.95), from the
  /// empirical quantiles of the pooled draws.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> credible_interval(
      double level) const;

  /// Posterior probability that at most `r` bugs remain — the "release
  /// confidence" number a decision maker asks for (r = 0: bug-free).
  [[nodiscard]] double probability_at_most(std::int64_t r) const;
};

/// Summarizes pooled residual draws (chain 0's draws first, matching
/// McmcRun::pooled). The streaming ResidualAccumulator and the stored-trace
/// path both funnel through this, so their summaries are bit-identical.
ResidualPosterior summarize_residual_samples(std::span<const double> pooled);

/// Extracts the "residual" parameter from `run` and summarizes it.
ResidualPosterior summarize_residual_posterior(const mcmc::McmcRun& run);

}  // namespace srm::core
