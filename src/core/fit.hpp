// The single-cell fit API — one (dataset, prior, model, config, Gibbs
// settings, observation day) posterior, computed in streaming or
// stored-trace mode.
//
// This is the one code path every frontend shares: the CLI `fit` command,
// every cell of the 2x5x9 evaluation sweep (report/sweep.cpp via
// core::run_observation), and the estimation service (src/serve/) all
// resolve to fit_cell(). A FitRequest carries exactly the inputs that
// determine the sampled bits, so artifact::cell_hash over its spec form is
// a complete cache key: two requests with equal hashes produce
// byte-identical serialized results.
#pragma once

#include <cstdint>

#include "core/experiment.hpp"
#include "data/bug_count_data.hpp"

namespace srm::core {

/// One posterior cell. Unlike the sweep-oriented ExperimentSpec there is no
/// observation-day grid and no store protocol — just the inputs of a single
/// fit.
struct FitRequest {
  PriorKind prior = PriorKind::kPoisson;
  DetectionModelKind model = DetectionModelKind::kConstant;
  HyperPriorConfig config{};
  mcmc::GibbsOptions gibbs{};
  /// 1-based observation day; days beyond the series are virtual testing.
  std::size_t observation_day = 0;
  /// Ground-truth eventual bug total (for the "actual residual" field).
  std::int64_t eventual_total = 0;
};

/// The request as a single-day ExperimentSpec — the form the artifact
/// layer's cell_hash/cell_identity consume. The conversion is lossless for
/// hashing purposes: cell identity deliberately excludes the day grid.
[[nodiscard]] ExperimentSpec to_experiment_spec(const FitRequest& request);

/// The inverse projection: one day of a sweep spec as a FitRequest.
[[nodiscard]] FitRequest single_cell_request(const ExperimentSpec& spec,
                                             std::size_t observation_day);

/// Fits the requested SRM on `base` seen at the request's observation day
/// (truncate + zero-pad, Section 5.1) and returns the residual-bug
/// posterior, WAIC and per-parameter convergence diagnostics. Deterministic
/// given the request: bit-identical for any worker count, with or without
/// keep_traces.
ObservationResult fit_cell(const data::BugCountData& base,
                           const FitRequest& request);

}  // namespace srm::core
