// Analytic posteriors of the residual bug count R = N - s_k for known
// detection probabilities — the paper's Propositions 1 and 2.
//
// Proposition 1 (Rallis-Lansdowne): with the Poisson(lambda_0) prior on N,
//   R | x, p ~ Poisson(lambda_k),   lambda_k = lambda_0 * prod_i q_i.
//
// Proposition 2 (heterogeneous extension of Chun): with the
// NegativeBinomial(alpha_0, beta_0) prior on N (pmf
// C(n+alpha_0-1, n) beta_0^{alpha_0} (1-beta_0)^n),
//   R | x, p ~ NegativeBinomial(alpha_k, beta_k),
//   alpha_k = alpha_0 + s_k,   1 - beta_k = (1 - beta_0) * prod_i q_i.
//
// Note the paper prints Eq (13) as beta_k = beta_0 prod q_i, which matches
// the opposite ("failure-probability") parametrization; the form above is
// the standard-parametrization equivalent and is verified against a
// brute-force prior*likelihood computation in tests/core/conjugate_test.cpp.
#pragma once

#include <span>

#include "data/bug_count_data.hpp"
#include "stats/negative_binomial.hpp"
#include "stats/poisson.hpp"

namespace srm::core {

/// Proposition 1. `probabilities` are p_1..p_k for the observed days.
stats::Poisson poisson_residual_posterior(
    double lambda0, const data::BugCountData& data,
    std::span<const double> probabilities);

/// Overload taking the precomputed survival product Q = prod q_i in [0, 1]
/// (from a numerically stable log-domain computation).
stats::Poisson poisson_residual_posterior(double lambda0,
                                          const data::BugCountData& data,
                                          double survival);

/// Proposition 2 (corrected parametrization — see header comment).
stats::NegativeBinomial negative_binomial_residual_posterior(
    double alpha0, double beta0, const data::BugCountData& data,
    std::span<const double> probabilities);

/// Overload taking the precomputed survival product Q.
stats::NegativeBinomial negative_binomial_residual_posterior(
    double alpha0, double beta0, const data::BugCountData& data,
    double survival);

}  // namespace srm::core
