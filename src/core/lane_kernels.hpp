// Lane-parallel chain kernels: the detection channels and likelihood
// reductions of four independent Gibbs chains evaluated together, one
// chain per SIMD lane.
//
// Where detection_simd.hpp vectorizes *within* one likelihood evaluation
// (across days, one chain), these kernels vectorize *across chains*: every
// day is one vector op whose lanes hold the four chains' probe parameters,
// so every model — including model0/model1, whose per-day math is too thin
// for within-evaluation SIMD — gets the full lane win. Buffers are SoA:
// zeta is parameter-major (`zeta_soa[param * kChainLanes + lane]`), the
// channel outputs day-major (`out[day * kChainLanes + lane]`).
//
// Lane-independence contract (what makes packed chains bit-identical to
// solo ones): every value written for lane l is a pure function of lane
// l's inputs. The implementation uses only the vertical exact ops of
// support/simd/lanes.hpp and the backend-identical transcendentals of
// support/simd/math.hpp, so the contract holds on every backend and the
// golden lane digests pin one result across all of them.
//
// Like detection_simd.hpp, this header is ISA-neutral; only the matching
// .cpp may be compiled with wider-ISA flags (see src/core/CMakeLists.txt).
// It deliberately avoids the detection-model headers so the wide TU pulls
// in as little inline code as possible: the model is identified by the
// integer value of core::DetectionModelKind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace srm::core::lane_kernels {

/// Chains packed per call — the simd::kLanes of the kernel TU's backend
/// (static_asserted there). Fixed at 4 on every backend.
inline constexpr std::size_t kChainLanes = 4;

/// The lane backend the kernel TU was compiled against ("avx2", "sse2",
/// "neon", or "scalar").
const char* isa_name();

/// Fills both detection channels for all lanes: probabilities and
/// log-survivals, day-major with stride kChainLanes. `model_kind` is the
/// integer value of the chain's core::DetectionModelKind; `zeta_soa` holds
/// the per-lane parameter vectors, parameter-major. `log_day` /
/// `pareto_exponent` are the shared day tables (detection_tables.hpp) —
/// identical across lanes because the packed chains sample one dataset.
/// Lanes probing outside the parameter support may produce NaN/inf channel
/// values; callers mask those lanes off afterwards.
void detection_lanes(int model_kind, std::size_t days, const double* zeta_soa,
                     std::span<const double> log_day,
                     std::span<const double> pareto_exponent,
                     double* probabilities, double* log_survivals);

/// Day-shared observation data for the reductions, borrowed straight from
/// data::BugCountData — the kernels widen each entry to its exact double
/// (counts are far below 2^53) at the point of use, like the scalar loops.
struct LaneDayData {
  std::size_t days = 0;
  std::int64_t total = 0;                    ///< s_k
  const std::int64_t* counts = nullptr;      ///< x_i, entry [i] for day i+1
  const std::int64_t* cumulative = nullptr;  ///< s_i, entry [i] for day i+1
};

/// Per-lane log_likelihood_collapsed_base plus the per-lane sum of log
/// q_i (the survival ingredient), in one day sweep. Mirrors the scalar
/// kernel's semantics lane-for-lane: impossible configurations yield
/// -inf, skipped days contribute nothing, and the day order of the
/// accumulation is the scalar loop's.
void collapsed_base_lanes(const LaneDayData& data, const double* probabilities,
                          const double* log_survivals, double* base_out,
                          double* logq_sum_out);

/// Per-lane log_likelihood_zeta_kernel with per-lane initial bug counts N
/// (exact doubles). Same masking semantics as the scalar kernel.
void zeta_kernel_lanes(const LaneDayData& data, const double* initial_bugs,
                       const double* probabilities,
                       const double* log_survivals, double* out);

/// Per-lane sum of log q_i over all days (stable_survival's log domain);
/// a lane with any -inf entry sums to -inf.
void logq_sum_lanes(std::size_t days, const double* log_survivals,
                    double* out);

}  // namespace srm::core::lane_kernels
