#include "core/predictive.hpp"

#include <cmath>
#include <limits>

#include "mcmc/gibbs.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace srm::core {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

PredictiveSummary score_holdout(const SrmModel& model,
                                const mcmc::McmcRun& run,
                                const data::BugCountData& full) {
  const std::size_t m = model.data().days();
  const std::size_t k = full.days();
  SRM_EXPECTS(k > m, "holdout scoring needs days beyond the fit window");
  SRM_EXPECTS(model.data().total() == full.cumulative_through(m),
              "model must have been fitted on a prefix of `full`");
  const std::size_t total_samples = run.total_samples();
  SRM_EXPECTS(total_samples >= 1, "run contains no samples");

  PredictiveSummary summary;
  summary.fit_days = m;
  summary.holdout_days = k - m;
  summary.predicted_cumulative.assign(k - m, 0.0);

  std::vector<double> log_mass;
  log_mass.reserve(total_samples);
  double next_count_accumulator = 0.0;
  std::size_t inconsistent = 0;

  std::vector<double> state(model.state_size());
  const std::int64_t s_m = full.cumulative_through(m);
  for (std::size_t c = 0; c < run.chain_count(); ++c) {
    const auto& chain = run.chain(c);
    for (std::size_t s = 0; s < chain.sample_count(); ++s) {
      for (std::size_t p = 0; p < state.size(); ++p) {
        state[p] = chain.parameter(p)[s];
      }
      const auto residual = static_cast<std::int64_t>(
          std::llround(state[model.residual_index()]));
      const std::int64_t n = s_m + residual;
      const auto zeta =
          std::span<const double>(state).subspan(model.zeta_offset());
      const auto& detector = model.detection_model();

      // Sequential held-out likelihood; -inf when the sampled bug content
      // cannot accommodate the observed future counts.
      double log_p = 0.0;
      for (std::size_t day = m + 1; day <= k; ++day) {
        const std::int64_t before = n - full.cumulative_through(day - 1);
        const std::int64_t x = full.count_on_day(day);
        if (before < x) {
          log_p = kNegInf;
          break;
        }
        const double p_day = detector.probability(day, zeta);
        if (p_day <= 0.0) {
          if (x != 0) {
            log_p = kNegInf;
            break;
          }
          continue;
        }
        if (p_day >= 1.0) {
          if (x != before) {
            log_p = kNegInf;
            break;
          }
          continue;
        }
        log_p += math::log_binomial(before, x) +
                 static_cast<double>(x) * std::log(p_day) +
                 static_cast<double>(before - x) * std::log1p(-p_day);
      }
      log_mass.push_back(log_p);
      if (log_p == kNegInf) ++inconsistent;

      // Predictive moments ignore the held-out counts (pure forecast).
      const double p_next = detector.probability(m + 1, zeta);
      next_count_accumulator += static_cast<double>(residual) * p_next;
      double survive = 1.0;
      for (std::size_t day = m + 1; day <= k; ++day) {
        survive *= 1.0 - detector.probability(day, zeta);
        summary.predicted_cumulative[day - m - 1] +=
            static_cast<double>(s_m) +
            static_cast<double>(residual) * (1.0 - survive);
      }
    }
  }

  const double log_s = std::log(static_cast<double>(total_samples));
  summary.log_score = math::log_sum_exp(log_mass) - log_s;
  summary.inconsistent_fraction =
      static_cast<double>(inconsistent) / static_cast<double>(total_samples);
  summary.mean_next_count =
      next_count_accumulator / static_cast<double>(total_samples);
  for (double& v : summary.predicted_cumulative) {
    v /= static_cast<double>(total_samples);
  }
  return summary;
}

PredictiveSummary fit_and_score_holdout(const data::BugCountData& full,
                                        std::size_t fit_days, PriorKind prior,
                                        DetectionModelKind model_kind,
                                        const HyperPriorConfig& config,
                                        const mcmc::GibbsOptions& gibbs) {
  SRM_EXPECTS(fit_days >= 1 && fit_days < full.days(),
              "fit window must be a strict prefix");
  const auto model =
      make_model(prior, model_kind, full.truncated(fit_days), config, gibbs);
  const auto run = mcmc::run_gibbs(*model, gibbs);
  return score_holdout(*model, run, full);
}

}  // namespace srm::core
