#include "core/detection_tables.hpp"

#include <cmath>

namespace srm::core {

// srm-lint: allow(expects) — total domain: any day count is valid
const DayTables& day_tables(std::size_t days) {
  thread_local DayTables tables;
  for (std::size_t d = tables.log_day.size() + 1; d <= days; ++d) {
    tables.log_day.push_back(std::log(static_cast<double>(d)));
  }
  for (std::size_t i = tables.pareto_exponent.size() + 1; i <= days; ++i) {
    const double d = static_cast<double>(i);
    tables.pareto_exponent.push_back(std::log(d + 2.0) / (d + 1.0));
  }
  return tables;
}

}  // namespace srm::core
