// Day-indexed constant tables shared by the detection models' batch
// channels. Model2 consumes log(d), model3 consumes log(d+2)/(d+1), and
// the vectorized Weibull kernel reuses log(d) to form d^omega; before this
// helper each model grew its own thread_local cache inside
// detection_models.cpp with the same lifecycle duplicated per table.
#pragma once

#include <cstddef>
#include <vector>

namespace srm::core {

/// Parallel day-indexed tables, entry [i] describing day i+1. Entries are
/// computed by the exact expressions the scalar detection channels use
/// (`std::log(double(d))` and `std::log(d + 2.0) / (d + 1.0)`), so cached
/// values are bit-identical to the inline ones they replaced.
struct DayTables {
  std::vector<double> log_day;          ///< log(d) for d = 1..days
  std::vector<double> pareto_exponent;  ///< log(d+2)/(d+1) for d = 1..days
};

/// Tables covering at least `days` entries. The backing storage is
/// thread_local (concurrent Gibbs chains must not contend) and grows on
/// demand, so any day count seen during warm-up is served allocation-free
/// in steady state. The reference is invalidated by a later call with a
/// larger `days` on the same thread; probes use it immediately.
const DayTables& day_tables(std::size_t days);

}  // namespace srm::core
