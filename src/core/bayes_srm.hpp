// The paper's 2 x 5 Bayesian discrete-time SRMs (Section 3): a prior on the
// initial bug content N (Poisson -> NHPP-based SRM, negative binomial ->
// NHMPP-based SRM) crossed with the five detection-probability models, all
// hyperparameters under non-informative uniform hyperpriors, sampled by a
// Gibbs scheme (Eqs 14-22) built on srm::mcmc.
//
// Gibbs conditionals (derived in DESIGN.md):
//   Poisson prior:
//     R = N - s_k | lambda0, zeta, x  ~ Poisson(lambda0 * prod q_i)  [exact]
//     lambda0 | N ~ TruncatedGamma(N + 1, 1, lambda_max)             [exact]
//     zeta_j | N, x  — slice sampling of the zeta-kernel of Eq (2)
//   Negative binomial prior:
//     R | alpha0, beta0, zeta, x ~ NB(alpha0 + s_k, beta_k)          [exact]
//     beta0 | N, alpha0 ~ Beta(alpha0 + 1, N + 1)                    [exact]
//     alpha0 | N, beta0 — slice sampling on (0, alpha_max)
//     zeta_j | N, x     — slice sampling
//
// State vector layout (also the parameter-name order):
//   Poisson prior:  [residual, lambda0, zeta...]
//   NB prior:       [residual, alpha0, beta0, zeta...]
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/detection_models.hpp"
#include "core/model_family.hpp"
#include "data/bug_count_data.hpp"
#include "mcmc/gibbs.hpp"

namespace srm::core {

class BayesianSrm final : public SrmModel, public mcmc::LaneGibbsModel {
 public:
  /// `vectorized` routes the detection batch channels and the pointwise
  /// log-likelihood fill through the support/simd kernels (models that
  /// have them; see GibbsOptions::vectorized). Default off: the scalar
  /// path stays bit-identical to earlier releases.
  BayesianSrm(PriorKind prior, DetectionModelKind model_kind,
              data::BugCountData data, HyperPriorConfig config = {},
              bool vectorized = false);

  /// Per-chain scratch buffers for a full Gibbs scan, sized once from
  /// days() and parameter_count(). Threading one of these through update()
  /// makes steady-state sampling allocation-free; the buffers carry no
  /// sampler state, so draws are bit-identical with or without one.
  class Workspace final : public mcmc::GibbsWorkspace {
   public:
    explicit Workspace(const BayesianSrm& model);

   private:
    friend class BayesianSrm;
    std::vector<double> zeta;           ///< zeta block under update
    std::vector<double> probe;          ///< zeta with one coordinate probed
    std::vector<double> proposal;       ///< mode-jump candidate
    std::vector<double> probabilities;  ///< p_1..p_k channel
    std::vector<double> log_survivals;  ///< log q_1..log q_k channel
    std::vector<double> log_p;          ///< log p_i sweep (vectorized fill)
    std::vector<double> log_1mp;        ///< log(1-p_i) sweep (vectorized)
  };

  /// Shared scratch for a pack of up to kChainLanes chains advancing in
  /// SIMD lanes (GibbsOptions::chain_lanes). The zeta/probe/proposal
  /// blocks are parameter-major SoA (`[param * lane_width + lane]`), the
  /// detection channels day-major SoA with the same stride, and the
  /// observation columns are cached as exact doubles so the masked lane
  /// reductions never re-convert. Like Workspace, it carries no sampler
  /// state.
  class LaneWorkspace final : public mcmc::GibbsWorkspace {
   public:
    LaneWorkspace(const BayesianSrm& model, std::size_t lane_count);

   private:
    friend class BayesianSrm;
    std::size_t lane_count;             ///< chains actually packed (1..4)
    std::vector<double> zeta_soa;       ///< zeta blocks under update
    std::vector<double> probe_soa;      ///< zeta with one coordinate probed
    std::vector<double> proposal_soa;   ///< mode-jump candidates
    std::vector<double> probabilities;  ///< p channel, day-major SoA
    std::vector<double> log_survivals;  ///< log q channel, day-major SoA
  };

  // --- mcmc::GibbsModel -------------------------------------------------
  [[nodiscard]] std::vector<std::string> parameter_names() const override;
  [[nodiscard]] std::vector<double> initial_state(
      random::Rng& rng) const override;
  [[nodiscard]] std::unique_ptr<mcmc::GibbsWorkspace> make_workspace()
      const override;
  void update(std::vector<double>& state, random::Rng& rng,
              mcmc::GibbsWorkspace* workspace) const override;
  using mcmc::GibbsModel::update;

  // --- mcmc::LaneGibbsModel (see src/core/bayes_srm_lanes.cpp) ----------
  [[nodiscard]] std::size_t lane_width() const override;
  [[nodiscard]] std::unique_ptr<mcmc::GibbsWorkspace> make_lane_workspace(
      std::size_t lane_count) const override;
  void update_lanes(std::size_t lane_count,
                    std::vector<double>* const* states,
                    random::Rng* const* rngs,
                    mcmc::GibbsWorkspace& workspace) const override;

  // --- core::SrmModel ----------------------------------------------------
  [[nodiscard]] PriorKind family() const override { return prior_; }
  /// Index of the first detection-model parameter.
  [[nodiscard]] std::size_t zeta_offset() const override {
    return prior_ == PriorKind::kPoisson ? 2 : 3;
  }
  [[nodiscard]] std::size_t state_size() const override {
    return zeta_offset() + model_->parameter_count();
  }
  [[nodiscard]] const DetectionModel& detection_model() const override {
    return *model_;
  }
  [[nodiscard]] const data::BugCountData& data() const override {
    return data_;
  }
  [[nodiscard]] const HyperPriorConfig& config() const override {
    return config_;
  }
  [[nodiscard]] bool is_scan_workspace(
      const mcmc::GibbsWorkspace& workspace) const override;
  void pointwise_row(std::span<const double> state,
                     mcmc::GibbsWorkspace& workspace,
                     std::span<double> out) const override;

  // --- accessors ----------------------------------------------------------
  [[nodiscard]] PriorKind prior() const { return prior_; }

  // --- derived quantities -------------------------------------------------
  /// p_1..p_k for the given detection parameters.
  [[nodiscard]] std::vector<double> detection_probabilities(
      std::span<const double> zeta) const;

  /// log P(X_i = x_i | omega) for every observed day, with omega read from a
  /// sampled state vector — the WAIC ingredient (Eqs 24-25).
  [[nodiscard]] std::vector<double> pointwise_log_likelihood(
      std::span<const double> state) const;

  /// Allocation-free variant: fills out[i-1] for day i = 1..days() reusing
  /// the workspace's probability buffer. The WAIC matrix evaluates this per
  /// (draw, day); one workspace per worker keeps the pass allocation-free.
  void pointwise_log_likelihood_into(std::span<const double> state,
                                     Workspace& workspace,
                                     std::span<double> out) const;

  /// In-scan variant for streaming sinks: when `workspace` is the one the
  /// model's update() just ran with and its detection buffers are still
  /// fresh for `state` (collapsed scheme), the row is produced from those
  /// buffers without re-evaluating the detection model; otherwise it falls
  /// back to the full recomputation. Either way the output is bit-identical
  /// to pointwise_log_likelihood_into (the batch detection channel's
  /// bit-identity contract). Precondition: `state` is the draw the
  /// workspace's last update() produced, or the workspace was never
  /// updated (fallback path).
  void pointwise_into(std::span<const double> state, Workspace& workspace,
                      std::span<double> out) const;

  /// Unnormalized log joint density of (state, data) — prior * likelihood.
  /// Exposed for testing the Gibbs conditionals against brute force.
  [[nodiscard]] double log_joint(std::span<const double> state) const;

 private:
  void update_with(std::vector<double>& state, random::Rng& rng,
                   Workspace& workspace) const;
  void update_residual(std::vector<double>& state, random::Rng& rng,
                       double survival) const;
  /// prod q_i computed through the detection model's batch log-survival
  /// channel (exact even where q_i underflows); one virtual call per
  /// evaluation, buffered in the workspace.
  [[nodiscard]] double stable_survival(std::span<const double> zeta,
                                       Workspace& workspace) const;
  void update_hyperparameters(std::vector<double>& state,
                              random::Rng& rng) const;
  void update_zeta(std::vector<double>& state, random::Rng& rng,
                   Workspace& workspace) const;
  void update_hyperparameters_collapsed(std::vector<double>& state,
                                        random::Rng& rng,
                                        Workspace& workspace) const;
  void update_zeta_collapsed(std::vector<double>& state, random::Rng& rng,
                             Workspace& workspace) const;

  [[nodiscard]] std::int64_t initial_bugs_of(
      std::span<const double> state) const;

  // --- lane-parallel scan internals (src/core/bayes_srm_lanes.cpp) ------
  /// prod q_i per lane at ws.zeta_soa, through the lane detection channel.
  void lane_survivals(LaneWorkspace& ws, double* survivals) const;
  /// Collapsed marginal log-density of each lane's zeta block in
  /// `zeta_soa` (the lane analogue of update_zeta_collapsed's
  /// log_density_of). Only lanes in `active` are written; `states` supplies
  /// the per-lane NB hyperparameters.
  void collapsed_density_lanes(const double* zeta_soa, unsigned active,
                               std::vector<double>* const* states,
                               LaneWorkspace& ws, double* out) const;
  void update_zeta_collapsed_lanes(std::vector<double>* const* states,
                                   random::Rng* const* rngs,
                                   LaneWorkspace& ws) const;
  void update_zeta_lanes(std::vector<double>* const* states,
                         random::Rng* const* rngs, LaneWorkspace& ws) const;
  /// Per-lane scalar port of update_hyperparameters_collapsed with the
  /// survival product supplied by the lane channel (the scalar version
  /// recomputes it; the value is RNG-free so reuse cannot shift draws).
  void update_hyperparameters_collapsed_lane(std::vector<double>& state,
                                             random::Rng& rng,
                                             double survival) const;

  /// Shared tail of the pointwise fills: combines the fresh probability
  /// buffer in `workspace` into per-day log-likelihood terms. The scalar
  /// path is the historical per-day loop; the vectorized path sweeps
  /// log(p) / log(1-p) through the simd kernels first.
  void fill_pointwise(std::int64_t initial_bugs, Workspace& workspace,
                      std::span<double> out) const;

  PriorKind prior_;
  std::unique_ptr<DetectionModel> model_;
  data::BugCountData data_;
  HyperPriorConfig config_;
  bool vectorized_ = false;
  std::vector<ParameterSupport> zeta_supports_;
};

}  // namespace srm::core
