// Shared pointwise log-predictive evaluation for WAIC and PSIS-LOO.
//
// Both criteria need log p(x_i | omega_s) for every (data point i,
// posterior draw s) — by far the hot loop of model scoring, and perfectly
// data-parallel over draws. The matrix builder below runs sample chunks on
// the shared srm::runtime pool; every draw writes only its own column
// (disjoint slots), so the result is bit-identical for any worker count.
// The streaming pipeline (core/streaming.hpp) produces the same values
// in-scan without this second pass; this builder remains for stored-trace
// consumers.
#pragma once

#include "core/model_family.hpp"
#include "mcmc/trace.hpp"
#include "support/matrix.hpp"

namespace srm::core {

/// log p(x_i | omega_s) as a flat row-major matrix, rows() = data points,
/// cols() = flattened sample index (chain 0's draws first, matching
/// McmcRun::pooled). Evaluated in parallel over posterior draws.
support::Matrix pointwise_log_likelihood_matrix(const SrmModel& model,
                                                const mcmc::McmcRun& run);

}  // namespace srm::core
