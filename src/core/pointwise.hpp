// Shared pointwise log-predictive evaluation for WAIC and PSIS-LOO.
//
// Both criteria need log p(x_i | omega_s) for every (data point i,
// posterior draw s) — by far the hot loop of model scoring, and perfectly
// data-parallel over draws. The matrix builder below runs sample chunks on
// the shared srm::runtime pool; every draw writes only its own column
// (disjoint slots), so the result is bit-identical for any worker count.
#pragma once

#include <vector>

#include "core/bayes_srm.hpp"
#include "mcmc/trace.hpp"

namespace srm::core {

/// log p(x_i | omega_s) with layout [i][s]: one row per data point, columns
/// indexed by the flattened sample index (chain 0's draws first, matching
/// McmcRun::pooled). Evaluated in parallel over posterior draws.
std::vector<std::vector<double>> pointwise_log_likelihood_matrix(
    const BayesianSrm& model, const mcmc::McmcRun& run);

}  // namespace srm::core
