// Grouped software bug-count data: x_i bugs detected on testing day i.
//
// This is the data type every SRM in the library consumes (the paper's
// Section 2.1: group data x = {x_1, ..., x_k}, cumulative s_i).
// It also implements the two dataset manipulations of the experimental
// protocol (Section 5.1): truncation at an observation point and the
// "virtual testing" zero-count extension after release.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace srm::data {

class BugCountData {
 public:
  /// `daily_counts[i]` is the number of bugs found on day i+1; all entries
  /// must be >= 0 and at least one day is required.
  BugCountData(std::string name, std::vector<std::int64_t> daily_counts);

  /// Loads "day,count" CSV rows (header optional, '#' comments allowed).
  /// Days must be 1..k in order.
  static BugCountData from_csv_file(const std::string& path,
                                    const std::string& name = "csv");

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Number of testing days k.
  [[nodiscard]] std::size_t days() const { return counts_.size(); }
  /// Daily counts x_1..x_k (index 0 = day 1).
  [[nodiscard]] std::span<const std::int64_t> counts() const {
    return counts_;
  }
  /// x_i for 1-based day i.
  [[nodiscard]] std::int64_t count_on_day(std::size_t day) const;
  /// Cumulative counts s_1..s_k (index 0 = day 1).
  [[nodiscard]] std::span<const std::int64_t> cumulative() const {
    return cumulative_;
  }
  /// s_i for 1-based day i; s_0 = 0.
  [[nodiscard]] std::int64_t cumulative_through(std::size_t day) const;
  /// s_k — total bugs detected.
  [[nodiscard]] std::int64_t total() const {
    return cumulative_.empty() ? 0 : cumulative_.back();
  }

  /// The first `day` days (an observation point mid-testing).
  [[nodiscard]] BugCountData truncated(std::size_t day) const;

  /// Virtual testing (Section 5.1): extends the series with zero-count days
  /// until it spans `total_days` days, modeling the hypothesis that no bug
  /// is found after release.
  [[nodiscard]] BugCountData with_virtual_testing(std::size_t total_days) const;

 private:
  std::string name_;
  std::vector<std::int64_t> counts_;
  std::vector<std::int64_t> cumulative_;
};

}  // namespace srm::data
