#include "data/bug_count_data.hpp"

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/format.hpp"

namespace srm::data {

BugCountData::BugCountData(std::string name,
                           std::vector<std::int64_t> daily_counts)
    : name_(std::move(name)), counts_(std::move(daily_counts)) {
  SRM_EXPECTS(!counts_.empty(), "BugCountData requires at least one day");
  cumulative_.reserve(counts_.size());
  std::int64_t running = 0;
  for (const std::int64_t x : counts_) {
    SRM_EXPECTS(x >= 0, "BugCountData daily counts must be >= 0");
    running += x;
    cumulative_.push_back(running);
  }
}

BugCountData BugCountData::from_csv_file(const std::string& path,
                                         const std::string& name) {
  const auto rows = support::read_csv_file(path);
  SRM_EXPECTS(!rows.empty(), "empty bug-count CSV: " + path);
  std::vector<std::int64_t> counts;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    SRM_EXPECTS(row.size() == 2,
                "bug-count CSV rows must be 'day,count': " + path);
    if (r == 0) {
      // Optional header row: skip if the first cell is not numeric.
      bool numeric = !row[0].empty();
      for (const char c : row[0]) numeric = numeric && (c >= '0' && c <= '9');
      if (!numeric) continue;
    }
    const long long day = support::parse_count(row[0]);
    SRM_EXPECTS(static_cast<std::size_t>(day) == counts.size() + 1,
                "bug-count CSV days must be 1..k in order: " + path);
    counts.push_back(support::parse_count(row[1]));
  }
  return BugCountData(name, std::move(counts));
}

std::int64_t BugCountData::count_on_day(std::size_t day) const {
  SRM_EXPECTS(day >= 1 && day <= counts_.size(),
              "count_on_day requires 1 <= day <= k");
  return counts_[day - 1];
}

std::int64_t BugCountData::cumulative_through(std::size_t day) const {
  SRM_EXPECTS(day <= counts_.size(),
              "cumulative_through requires day <= k");
  return day == 0 ? 0 : cumulative_[day - 1];
}

BugCountData BugCountData::truncated(std::size_t day) const {
  SRM_EXPECTS(day >= 1 && day <= counts_.size(),
              "truncated requires 1 <= day <= k");
  return BugCountData(
      name_ + "@" + support::dec(day),
      std::vector<std::int64_t>(counts_.begin(),
                                counts_.begin() + static_cast<long>(day)));
}

BugCountData BugCountData::with_virtual_testing(std::size_t total_days) const {
  SRM_EXPECTS(total_days >= counts_.size(),
              "with_virtual_testing cannot shrink the series");
  std::vector<std::int64_t> extended(counts_.begin(), counts_.end());
  extended.resize(total_days, 0);
  return BugCountData(name_ + "+vt" + support::dec(total_days),
                      std::move(extended));
}

}  // namespace srm::data
