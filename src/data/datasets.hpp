// Embedded datasets.
//
// sys1_grouped() reconstructs the dataset of the paper's Fig. 1: 136 bugs
// found over 96 testing days of a real-time command and control system
// (Musa 1979, System 1). The per-day counts of the original report are not
// redistributable, but the paper's Tables II-IV reveal the cumulative counts
// at every observation point (the parenthesized deviations from 136):
//
//     s_48 = 42,  s_67 = 84,  s_86 = 132,  s_96 = 136.
//
// We therefore rebuild the daily series as the increments of a monotone
// piecewise-linear cumulative curve through exactly those anchors (Bresenham
// rounding keeps every day's count a non-negative integer and the anchor
// sums exact). The Bayesian machinery consumes only the grouped counts, and
// every table row of the paper is evaluated *at* an anchor, so the
// likelihood is pinned where it matters; see DESIGN.md §3.
#pragma once

#include "data/bug_count_data.hpp"

namespace srm::data {

/// The 136-bug / 96-day series described above.
BugCountData sys1_grouped();

/// Observation points used throughout the paper's Section 5 (testing days;
/// points beyond 96 are virtual-testing zero-count extensions).
inline constexpr std::size_t kSys1ObservationPoints[] = {48,  67,  86,
                                                         96,  106, 116,
                                                         126, 136, 146};

/// Number of bugs eventually detected — the paper's ground truth for the
/// "actual" residual count at each observation point.
inline constexpr std::int64_t kSys1TotalBugs = 136;

/// The last real testing day; later days are virtual.
inline constexpr std::size_t kSys1TestingDays = 96;

/// NTDS data (Jelinski-Moranda 1972): 26 software failures of the Naval
/// Tactical Data System during the production phase, grouped here into
/// 25 ten-day testing periods from the published inter-failure times.
/// Used by the multi-dataset ablation (paper Section 6 future work).
BugCountData ntds_grouped();

}  // namespace srm::data
