// Synthetic bug-count generator: simulates the exact detection process of
// the paper's Eq (1) — N0 initial bugs, day-i detection probability p_i,
// each remaining bug found independently, found bugs removed immediately.
//
// Used for property tests (parameter recovery), the multi-dataset ablation,
// and as a building block for users who want calibration studies.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/bug_count_data.hpp"
#include "random/rng.hpp"

namespace srm::data {

/// Day-indexed detection probability: detection_probability(i) for
/// i = 1..days, each value in [0, 1].
using DetectionProbabilityFn = std::function<double(std::size_t)>;

/// Simulates `days` testing days starting from `initial_bugs` bugs.
/// X_i | remaining ~ Binomial(remaining, p_i).
BugCountData simulate_detection_process(
    std::int64_t initial_bugs, std::size_t days,
    const DetectionProbabilityFn& detection_probability, random::Rng& rng,
    const std::string& name = "synthetic");

/// Simulates `replications` independent datasets from the same detection
/// process, in parallel on the shared srm::runtime pool. Replicate r draws
/// from a substream derived from (master_seed, r) via runtime::SeedSequence,
/// so the batch is bit-identical for any worker count and replicate r of a
/// batch of n equals replicate r of any larger batch. Names are
/// "<name_prefix>-<r>".
std::vector<BugCountData> simulate_replications(
    std::int64_t initial_bugs, std::size_t days,
    const DetectionProbabilityFn& detection_probability,
    std::uint64_t master_seed, std::size_t replications,
    const std::string& name_prefix = "replicate");

}  // namespace srm::data
