#include "data/generator.hpp"

#include <optional>

#include "random/samplers.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/seed_sequence.hpp"
#include "support/error.hpp"
#include "support/format.hpp"

namespace srm::data {

BugCountData simulate_detection_process(
    std::int64_t initial_bugs, std::size_t days,
    const DetectionProbabilityFn& detection_probability, random::Rng& rng,
    const std::string& name) {
  SRM_EXPECTS(initial_bugs >= 0,
              "simulate_detection_process requires initial_bugs >= 0");
  SRM_EXPECTS(days >= 1, "simulate_detection_process requires days >= 1");

  std::vector<std::int64_t> counts;
  counts.reserve(days);
  std::int64_t remaining = initial_bugs;
  for (std::size_t day = 1; day <= days; ++day) {
    const double p = detection_probability(day);
    SRM_EXPECTS(p >= 0.0 && p <= 1.0,
                "detection probabilities must lie in [0, 1]");
    const std::int64_t found = random::sample_binomial(rng, remaining, p);
    counts.push_back(found);
    remaining -= found;
  }
  return BugCountData(name, std::move(counts));
}

std::vector<BugCountData> simulate_replications(
    std::int64_t initial_bugs, std::size_t days,
    const DetectionProbabilityFn& detection_probability,
    std::uint64_t master_seed, std::size_t replications,
    const std::string& name_prefix) {
  SRM_EXPECTS(replications >= 1,
              "simulate_replications requires replications >= 1");
  // Substreams are keyed by replicate index, and each replicate fills its
  // own slot: the batch is reproducible independent of scheduling.
  runtime::SeedSequence seeds(master_seed);
  auto rngs = seeds.streams(replications);
  std::vector<std::optional<BugCountData>> slots(replications);
  runtime::parallel_for(0, replications, [&](std::size_t r) {
    slots[r] = simulate_detection_process(
        initial_bugs, days, detection_probability, rngs[r],
        name_prefix + "-" + support::dec(r));
  });
  std::vector<BugCountData> out;
  out.reserve(replications);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace srm::data
