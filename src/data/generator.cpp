#include "data/generator.hpp"

#include "random/samplers.hpp"
#include "support/error.hpp"

namespace srm::data {

BugCountData simulate_detection_process(
    std::int64_t initial_bugs, std::size_t days,
    const DetectionProbabilityFn& detection_probability, random::Rng& rng,
    const std::string& name) {
  SRM_EXPECTS(initial_bugs >= 0,
              "simulate_detection_process requires initial_bugs >= 0");
  SRM_EXPECTS(days >= 1, "simulate_detection_process requires days >= 1");

  std::vector<std::int64_t> counts;
  counts.reserve(days);
  std::int64_t remaining = initial_bugs;
  for (std::size_t day = 1; day <= days; ++day) {
    const double p = detection_probability(day);
    SRM_EXPECTS(p >= 0.0 && p <= 1.0,
                "detection probabilities must lie in [0, 1]");
    const std::int64_t found = random::sample_binomial(rng, remaining, p);
    counts.push_back(found);
    remaining -= found;
  }
  return BugCountData(name, std::move(counts));
}

}  // namespace srm::data
