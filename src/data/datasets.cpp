#include "data/datasets.hpp"

#include <array>

#include "random/rng.hpp"
#include "random/samplers.hpp"
#include "support/error.hpp"

namespace srm::data {

namespace {

struct Anchor {
  std::int64_t day;
  std::int64_t cumulative;
};

// Cumulative anchors recovered from the paper's Tables II-IV (see header).
constexpr std::array<Anchor, 5> kSys1Anchors{{
    {0, 0}, {48, 42}, {67, 84}, {86, 132}, {96, 136},
}};

// Fixed seed: the reconstruction is a deterministic artifact of the library,
// not a random draw — changing this constant would change the "dataset".
constexpr std::uint64_t kSys1ReconstructionSeed = 0x5e5f1d47a11ce5ULL;

}  // namespace

BugCountData sys1_grouped() {
  // Each inter-anchor segment's bug total is spread over its days by a
  // seeded uniform multinomial (sequential binomial splits). This preserves
  // the anchor cumulants exactly while giving the day-to-day dispersion a
  // real testing log has; the smooth piecewise-linear spread would make
  // every SRM fit unrealistically well.
  random::Rng rng(kSys1ReconstructionSeed);
  std::vector<std::int64_t> counts;
  counts.reserve(kSys1TestingDays);
  for (std::size_t seg = 1; seg < kSys1Anchors.size(); ++seg) {
    const Anchor lo = kSys1Anchors[seg - 1];
    const Anchor hi = kSys1Anchors[seg];
    std::int64_t remaining = hi.cumulative - lo.cumulative;
    for (std::int64_t day = lo.day + 1; day <= hi.day; ++day) {
      const std::int64_t days_left = hi.day - day + 1;
      if (days_left == 1) {
        counts.push_back(remaining);
        remaining = 0;
        break;
      }
      const std::int64_t x = random::sample_binomial(
          rng, remaining, 1.0 / static_cast<double>(days_left));
      counts.push_back(x);
      remaining -= x;
    }
  }
  BugCountData data("sys1", std::move(counts));
  SRM_ENSURES(data.total() == kSys1TotalBugs,
              "sys1 reconstruction must total 136 bugs");
  SRM_ENSURES(data.cumulative_through(48) == 42 &&
                  data.cumulative_through(67) == 84 &&
                  data.cumulative_through(86) == 132,
              "sys1 reconstruction must hit the paper's anchors");
  return data;
}

BugCountData ntds_grouped() {
  // 26 NTDS production-phase failures (Jelinski-Moranda 1972), grouped into
  // 25 ten-day periods from the published inter-failure times
  // 9,12,11,4,7,2,5,8,5,7,1,6,1,9,4,1,3,3,6,1,11,33,7,91,2,1.
  return BugCountData("ntds", {1, 0, 1, 2, 3, 1, 2, 3, 1, 4, 2, 1, 0,
                               0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 3});
}

}  // namespace srm::data
