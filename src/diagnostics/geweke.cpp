#include "diagnostics/geweke.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/summary.hpp"
#include "support/error.hpp"

namespace srm::diagnostics {

double spectral_variance_of_mean(std::span<const double> values) {
  SRM_EXPECTS(values.size() >= 4,
              "spectral variance requires at least 4 samples");
  const auto n = static_cast<double>(values.size());
  // Bartlett window with the common n^(1/2) truncation point.
  const auto max_lag = static_cast<std::size_t>(std::floor(std::sqrt(n)));
  double s0 = stats::autocovariance(values, 0);
  for (std::size_t lag = 1; lag <= max_lag && lag < values.size(); ++lag) {
    const double weight =
        1.0 - static_cast<double>(lag) / static_cast<double>(max_lag + 1);
    s0 += 2.0 * weight * stats::autocovariance(values, lag);
  }
  return std::max(s0, 0.0) / n;
}

GewekeResult geweke(std::span<const double> chain, double first_fraction,
                    double last_fraction) {
  SRM_EXPECTS(first_fraction > 0.0 && last_fraction > 0.0 &&
                  first_fraction + last_fraction < 1.0,
              "geweke window fractions must be positive and sum below 1");
  const std::size_t n = chain.size();
  SRM_EXPECTS(n >= 20, "geweke requires at least 20 samples");

  const auto n_a = static_cast<std::size_t>(
      std::floor(first_fraction * static_cast<double>(n)));
  const auto n_b = static_cast<std::size_t>(
      std::floor(last_fraction * static_cast<double>(n)));
  return geweke_from_windows(chain.subspan(0, n_a), chain.subspan(n - n_b, n_b));
}

GewekeResult geweke_from_windows(std::span<const double> first,
                                 std::span<const double> last) {
  SRM_ASSERT(first.size() >= 4 && last.size() >= 4,
             "geweke windows too small");

  GewekeResult result;
  result.first_mean = stats::mean(first);
  result.last_mean = stats::mean(last);
  result.first_variance = spectral_variance_of_mean(first);
  result.last_variance = spectral_variance_of_mean(last);
  const double denom =
      std::sqrt(result.first_variance + result.last_variance);
  if (denom <= 0.0) {
    // Both windows constant: equal means converge trivially.
    result.z = (result.first_mean == result.last_mean)
                   ? 0.0
                   : std::numeric_limits<double>::infinity();
  } else {
    result.z = (result.first_mean - result.last_mean) / denom;
  }
  return result;
}

}  // namespace srm::diagnostics
