// Effective sample size via Geyer's initial positive sequence estimator —
// the standard MCMC efficiency measure, reported alongside the paper's two
// convergence diagnostics.
#pragma once

#include <span>

namespace srm::diagnostics {

/// ESS = n / (1 + 2 * sum of monotone initial-positive-sequence
/// autocorrelations). Returns n for a white-noise chain, much less for a
/// sticky one; clamped to [1, n].
double effective_sample_size(std::span<const double> chain);

/// Integrated autocorrelation time tau = n / ESS.
double integrated_autocorrelation_time(std::span<const double> chain);

}  // namespace srm::diagnostics
