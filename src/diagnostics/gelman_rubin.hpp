// Gelman-Rubin potential scale reduction factor (PSRF), Eqs (26)-(29) of the
// paper: PSRF = sqrt(V_hat / W) with the within-chain variance W and the
// pooled variance estimate V_hat = (n-1)/n W + B/n. PSRF < 1.1 is the
// paper's convergence criterion.
#pragma once

#include <span>
#include <vector>

#include "mcmc/trace.hpp"

namespace srm::diagnostics {

struct GelmanRubinResult {
  double psrf = 0.0;                 ///< sqrt(V_hat / W)
  double within_chain_variance = 0.0;   ///< W
  double between_chain_variance = 0.0;  ///< B / n
  double pooled_variance = 0.0;         ///< V_hat
};

/// Computes the PSRF from >= 2 chains of equal length (>= 2 samples each).
/// `chains[c]` is chain c's trace of one scalar parameter.
GelmanRubinResult gelman_rubin(
    const std::vector<std::vector<double>>& chains);

/// Convenience overload pulling one parameter out of an McmcRun.
GelmanRubinResult gelman_rubin(const mcmc::McmcRun& run,
                               std::size_t parameter_index);

/// The paper's convergence threshold.
inline constexpr double kPsrfThreshold = 1.1;

}  // namespace srm::diagnostics
