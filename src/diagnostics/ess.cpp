#include "diagnostics/ess.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/summary.hpp"
#include "support/error.hpp"

namespace srm::diagnostics {

double effective_sample_size(std::span<const double> chain) {
  SRM_EXPECTS(chain.size() >= 4,
              "effective_sample_size requires at least 4 samples");
  const auto n = static_cast<double>(chain.size());
  const double c0 = stats::autocovariance(chain, 0);
  if (c0 <= 0.0) return n;  // constant chain: every draw equals the mean

  // Geyer (1992): sum consecutive autocovariance pairs while positive,
  // enforcing monotone decrease of the pair sums.
  double sum = 0.0;
  double previous_pair = std::numeric_limits<double>::infinity();
  for (std::size_t lag = 1; lag + 1 < chain.size(); lag += 2) {
    const double pair = stats::autocovariance(chain, lag) +
                        stats::autocovariance(chain, lag + 1);
    if (pair <= 0.0) break;
    const double capped = std::min(pair, previous_pair);
    sum += capped;
    previous_pair = capped;
  }
  const double tau = 1.0 + 2.0 * sum / c0;
  return std::clamp(n / std::max(tau, 1.0), 1.0, n);
}

double integrated_autocorrelation_time(std::span<const double> chain) {
  return static_cast<double>(chain.size()) / effective_sample_size(chain);
}

}  // namespace srm::diagnostics
