#include "diagnostics/online.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "diagnostics/geweke.hpp"
#include "support/error.hpp"

namespace srm::diagnostics {

ParameterStatsAccumulator::ParameterStatsAccumulator(
    std::size_t parameter_count, std::size_t chain_count,
    std::size_t draws_per_chain)
    : parameter_count_(parameter_count),
      chain_count_(chain_count),
      draws_per_chain_(draws_per_chain),
      max_lag_(std::min(kMaxEssLag, draws_per_chain - 1)),
      ring_mask_(std::bit_ceil(std::min(kMaxEssLag, draws_per_chain - 1) +
                               std::size_t{1}) -
                 1),
      shards_(parameter_count * chain_count) {
  SRM_EXPECTS(parameter_count >= 1, "need at least one parameter");
  SRM_EXPECTS(chain_count >= 1, "need at least one chain");
  SRM_EXPECTS(draws_per_chain >= 1, "need at least one draw per chain");
  const std::size_t window = max_lag_ + 1;
  for (auto& shard : shards_) {
    shard.lag_products.assign(window, 0.0);
    shard.head.reserve(window);
    shard.ring.assign(ring_mask_ + 1, 0.0);
  }
  if (draws_per_chain_ >= 20) {
    // Same window arithmetic as geweke()'s defaults (0.1, 0.5).
    geweke_first_n_ = static_cast<std::size_t>(
        std::floor(0.1 * static_cast<double>(draws_per_chain_)));
    geweke_last_n_ = static_cast<std::size_t>(
        std::floor(0.5 * static_cast<double>(draws_per_chain_)));
    geweke_first_.resize(parameter_count_);
    geweke_last_.resize(parameter_count_);
    for (std::size_t p = 0; p < parameter_count_; ++p) {
      geweke_first_[p].reserve(geweke_first_n_);
      geweke_last_[p].reserve(geweke_last_n_);
    }
  }
}

void ParameterStatsAccumulator::add_value(ChainShard& shard, double x) {
  const std::size_t window = max_lag_ + 1;
  const std::size_t t = shard.n;
  if (t == 0) {
    shard.shift = x;
  }
  const double shift = shard.shift;
  const double y = x - shift;
  auto& products = shard.lag_products;
  products[0] += y * y;
  const std::size_t lags = std::min(max_lag_, t);
  if (lags != 0) {
    // Slots for t-1, t-2, ... have not been overwritten yet: the current
    // draw lands on t & mask, and t - lag > t - capacity for lag <= max_lag
    // < capacity. The slot sequence descends linearly with at most one
    // wrap, so the lag loop splits into two branch-free runs the compiler
    // can keep in registers — no per-iteration modulo.
    const double* ring = shard.ring.data();
    double* prod = shard.lag_products.data() + 1;
    const std::size_t start = (t - 1) & ring_mask_;
    const std::size_t first = std::min(lags, start + 1);
    for (std::size_t k = 0; k < first; ++k) {
      prod[k] += y * (ring[start - k] - shift);
    }
    for (std::size_t k = first; k < lags; ++k) {
      prod[k] += y * (ring[ring_mask_ - (k - first)] - shift);
    }
  }
  shard.ring[t & ring_mask_] = x;
  if (shard.head.size() < window) {
    shard.head.push_back(x);
  }
  shard.shifted_sum += y;
  shard.moments.add(x);
  shard.n = t + 1;
}

void ParameterStatsAccumulator::accumulate(std::size_t chain,
                                           std::span<const double> state,
                                           mcmc::GibbsWorkspace* /*workspace*/) {
  SRM_EXPECTS(chain < chain_count_, "chain index out of range");
  SRM_EXPECTS(state.size() == parameter_count_,
              "state width must match the accumulator's parameter count");
  const std::size_t t = shards_[chain].n;  // shard (p=0, c=chain)
  for (std::size_t p = 0; p < parameter_count_; ++p) {
    add_value(shards_[p * chain_count_ + chain], state[p]);
  }
  if (chain == 0 && !geweke_first_.empty()) {
    const bool in_first = t < geweke_first_n_;
    const bool in_last = t >= draws_per_chain_ - geweke_last_n_;
    if (in_first || in_last) {
      for (std::size_t p = 0; p < parameter_count_; ++p) {
        if (in_first) geweke_first_[p].push_back(state[p]);
        if (in_last) geweke_last_[p].push_back(state[p]);
      }
    }
  }
}

double ParameterStatsAccumulator::pooled_ess(std::size_t p,
                                             double pooled_mean) const {
  const std::size_t total = chain_count_ * draws_per_chain_;
  SRM_EXPECTS(total >= 4,
              "effective_sample_size requires at least 4 samples");
  const auto n = static_cast<double>(total);
  const std::size_t window = max_lag_ + 1;

  // Pooled autocovariances gamma[l] of the chain-concatenated sequence,
  // reconstructed from the shifted per-chain lag products plus the raw
  // cross-boundary pairs between consecutive chains:
  //   sum_t (x_t - m)(x_{t+l} - m)
  //     = P[l] - d (A_l + B_l) + (n_c - l) d^2         within a chain,
  // with d = m - shift, A_l / B_l the shifted sums excluding the last /
  // first l draws. Denominator n for every lag, as in stats::autocovariance.
  std::vector<double> gamma(window, 0.0);
  for (std::size_t lag = 0; lag < window; ++lag) {
    double acc = 0.0;
    for (std::size_t c = 0; c < chain_count_; ++c) {
      const ChainShard& s = shard(p, c);
      const double d = pooled_mean - s.shift;
      double head_y = 0.0;
      double tail_y = 0.0;
      for (std::size_t j = 0; j < lag; ++j) {
        head_y += s.head[j] - s.shift;
        tail_y += s.ring[(s.n - lag + j) & ring_mask_] - s.shift;
      }
      const double a = s.shifted_sum - tail_y;
      const double b = s.shifted_sum - head_y;
      acc += s.lag_products[lag] - d * (a + b) +
             static_cast<double>(s.n - lag) * d * d;
    }
    // Pairs straddling a chain boundary in the pooled concatenation: the
    // last `lag` draws of chain c against the first `lag` draws of c + 1
    // (lag <= draws_per_chain - 1, so pairs never span more than one
    // boundary).
    for (std::size_t c = 0; c + 1 < chain_count_; ++c) {
      const ChainShard& left = shard(p, c);
      const ChainShard& right = shard(p, c + 1);
      for (std::size_t j = 0; j < lag; ++j) {
        const double x = left.ring[(left.n - lag + j) & ring_mask_];
        acc += (x - pooled_mean) * (right.head[j] - pooled_mean);
      }
    }
    gamma[lag] = acc / n;
  }

  // Geyer initial positive sequence, as in effective_sample_size().
  const double c0 = gamma[0];
  if (c0 <= 0.0) return n;  // constant sequence
  double sum = 0.0;
  double previous_pair = std::numeric_limits<double>::infinity();
  for (std::size_t lag = 1; lag + 1 <= max_lag_; lag += 2) {
    const double pair = gamma[lag] + gamma[lag + 1];
    if (pair <= 0.0) break;
    const double capped = std::min(pair, previous_pair);
    sum += capped;
    previous_pair = capped;
  }
  const double tau = 1.0 + 2.0 * sum / c0;
  return std::clamp(n / std::max(tau, 1.0), 1.0, n);
}

OnlineParameterStats ParameterStatsAccumulator::parameter(
    std::size_t p) const {
  SRM_EXPECTS(p < parameter_count_, "parameter index out of range");
  for (std::size_t c = 0; c < chain_count_; ++c) {
    SRM_EXPECTS(shard(p, c).n == draws_per_chain_,
                "accumulator is incomplete: a chain is missing draws");
  }

  OnlineParameterStats out;

  double total_sum = 0.0;
  for (std::size_t c = 0; c < chain_count_; ++c) {
    total_sum += shard(p, c).moments.sum();
  }
  const auto total =
      static_cast<double>(chain_count_ * draws_per_chain_);
  out.posterior_mean = total_sum / total;

  if (chain_count_ >= 2) {
    // Exactly gelman_rubin()'s arithmetic over the per-chain shards.
    SRM_EXPECTS(draws_per_chain_ >= 2,
                "gelman_rubin requires >= 2 samples per chain");
    const auto m = static_cast<double>(chain_count_);
    const auto nd = static_cast<double>(draws_per_chain_);
    double w = 0.0;
    std::vector<double> chain_means;
    chain_means.reserve(chain_count_);
    for (std::size_t c = 0; c < chain_count_; ++c) {
      w += shard(p, c).moments.sample_variance();
      chain_means.push_back(shard(p, c).moments.mean());
    }
    w /= m;
    double grand_mean = 0.0;
    for (const double cm : chain_means) grand_mean += cm;
    grand_mean /= m;
    double b_over_n = 0.0;
    for (const double cm : chain_means) {
      b_over_n += (cm - grand_mean) * (cm - grand_mean);
    }
    b_over_n /= (m - 1.0);
    const double pooled = (nd - 1.0) / nd * w + b_over_n;
    if (w <= 0.0) {
      out.psrf = (b_over_n <= 0.0)
                     ? 1.0
                     : std::numeric_limits<double>::infinity();
    } else {
      out.psrf = std::sqrt(pooled / w);
    }
  } else {
    out.psrf = 1.0;  // single chain: PSRF undefined, report neutral
  }

  SRM_EXPECTS(!geweke_first_.empty(), "geweke requires at least 20 samples");
  out.geweke_z = geweke_from_windows(geweke_first_[p], geweke_last_[p]).z;

  out.ess = pooled_ess(p, out.posterior_mean);
  return out;
}

}  // namespace srm::diagnostics
