#include "diagnostics/gelman_rubin.hpp"

#include <cmath>
#include <limits>

#include "stats/summary.hpp"
#include "support/error.hpp"

namespace srm::diagnostics {

GelmanRubinResult gelman_rubin(
    const std::vector<std::vector<double>>& chains) {
  SRM_EXPECTS(chains.size() >= 2, "gelman_rubin requires >= 2 chains");
  const std::size_t n = chains.front().size();
  SRM_EXPECTS(n >= 2, "gelman_rubin requires >= 2 samples per chain");
  for (const auto& chain : chains) {
    SRM_EXPECTS(chain.size() == n, "gelman_rubin chains must be equal length");
  }
  const auto m = static_cast<double>(chains.size());
  const auto nd = static_cast<double>(n);

  // W = mean of within-chain sample variances; B/n = variance of the chain
  // means (Eqs 27, 29).
  double w = 0.0;
  std::vector<double> chain_means;
  chain_means.reserve(chains.size());
  for (const auto& chain : chains) {
    w += stats::sample_variance(chain);
    chain_means.push_back(stats::mean(chain));
  }
  w /= m;

  const double grand_mean = stats::mean(chain_means);
  double b_over_n = 0.0;
  for (const double cm : chain_means) {
    b_over_n += (cm - grand_mean) * (cm - grand_mean);
  }
  b_over_n /= (m - 1.0);

  GelmanRubinResult result;
  result.within_chain_variance = w;
  result.between_chain_variance = b_over_n;
  result.pooled_variance = (nd - 1.0) / nd * w + b_over_n;  // Eq (28)
  if (w <= 0.0) {
    // All chains constant: identical constants have converged trivially;
    // differing constants will never mix.
    result.psrf = (b_over_n <= 0.0)
                      ? 1.0
                      : std::numeric_limits<double>::infinity();
  } else {
    result.psrf = std::sqrt(result.pooled_variance / w);  // Eq (26)
  }
  return result;
}

GelmanRubinResult gelman_rubin(const mcmc::McmcRun& run,
                               std::size_t parameter_index) {
  std::vector<std::vector<double>> chains;
  chains.reserve(run.chain_count());
  for (std::size_t c = 0; c < run.chain_count(); ++c) {
    const auto view = run.chain(c).parameter(parameter_index);
    chains.emplace_back(view.begin(), view.end());
  }
  return gelman_rubin(chains);
}

}  // namespace srm::diagnostics
