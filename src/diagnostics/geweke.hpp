// Geweke convergence diagnostic (Eq 30 of the paper, with the obvious typo
// fixed): Z = (mean of the first n_A samples - mean of the last n_B samples)
// divided by sqrt of the SUM of their variance estimates. The variances use
// a spectral-density-at-zero estimate (Bartlett-windowed autocovariances),
// matching coda/JAGS. |Z| < 1.96 is taken as evidence of stationarity.
#pragma once

#include <span>

namespace srm::diagnostics {

struct GewekeResult {
  double z = 0.0;
  double first_mean = 0.0;
  double last_mean = 0.0;
  double first_variance = 0.0;  ///< spectral variance of the first-window mean
  double last_variance = 0.0;
};

/// `first_fraction` / `last_fraction` follow Geweke's defaults (0.1, 0.5).
GewekeResult geweke(std::span<const double> chain,
                    double first_fraction = 0.1, double last_fraction = 0.5);

/// The statistic from pre-extracted windows (>= 4 samples each). geweke()
/// delegates here after slicing the chain; the streaming accumulator feeds
/// the same windows it collected online, so both paths are bit-identical.
GewekeResult geweke_from_windows(std::span<const double> first,
                                 std::span<const double> last);

/// The standard-normal 5% two-sided criterion used in the paper.
inline constexpr double kGewekeThreshold = 1.96;

/// Spectral density at frequency zero of `values`, estimated with a
/// Bartlett (triangular) lag window of the given half-width; divides by n
/// to estimate Var(sample mean). Exposed for testing.
double spectral_variance_of_mean(std::span<const double> values);

}  // namespace srm::diagnostics
