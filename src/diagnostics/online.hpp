// Online convergence diagnostics for the streaming posterior pipeline:
// one PosteriorAccumulator that ingests every retained draw once and can
// reproduce the per-parameter numbers run_observation() reports —
// posterior mean, Gelman-Rubin PSRF, chain-0 Geweke Z, and pooled ESS —
// without the chains ever being stored.
//
// Replication guarantees (streaming and stored-trace replay both feed
// this same accumulator, so the two modes are bit-identical by
// construction; the notes below are about matching the *trace-based*
// diagnostics functions):
//   * PSRF executes exactly the gelman_rubin() arithmetic: per-chain
//     Welford variances and plain-sum means, combined in chain order.
//   * Geweke collects the same first/last chain-0 windows the trace path
//     slices and finalizes through geweke_from_windows() — bit-identical.
//   * The pooled mean merges per-chain plain sums in chain order (the
//     trace path sums the pooled concatenation in one pass; same value up
//     to floating-point association).
//   * ESS uses the same Geyer initial-positive-sequence estimator on
//     pooled autocovariances, but from a bounded lag window (kMaxEssLag):
//     the O(n) lag scan of effective_sample_size() cannot be streamed in
//     O(1) memory. Truncating the positive sequence can only shrink the
//     autocorrelation-time estimate, i.e. the streamed ESS is >= the
//     trace-based one and equal whenever Geyer's sequence dies out within
//     the window (it does for every paper-scale chain).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mcmc/accumulator.hpp"
#include "stats/online.hpp"

namespace srm::diagnostics {

/// Finalized per-parameter diagnostics, mirroring what run_observation
/// derives from a stored trace.
struct OnlineParameterStats {
  double posterior_mean = 0.0;
  double psrf = 0.0;      ///< 1.0 (neutral) for single-chain runs
  double geweke_z = 0.0;  ///< chain-0 Geweke statistic
  double ess = 0.0;       ///< pooled effective sample size
};

class ParameterStatsAccumulator final : public mcmc::PosteriorAccumulator {
 public:
  /// Autocovariance window for the streamed ESS (see file comment).
  static constexpr std::size_t kMaxEssLag = 128;

  /// The retention geometry must be known up front: `draws_per_chain` is
  /// GibbsOptions::iterations (every chain retains exactly that many
  /// draws), which fixes the Geweke window boundaries and the ESS lag
  /// window. All per-draw buffers are allocated here — accumulate() is
  /// allocation-free.
  ParameterStatsAccumulator(std::size_t parameter_count,
                            std::size_t chain_count,
                            std::size_t draws_per_chain);

  void accumulate(std::size_t chain, std::span<const double> state,
                  mcmc::GibbsWorkspace* workspace) override;

  /// Finalized diagnostics for parameter `p`. Requires every chain to
  /// have delivered exactly `draws_per_chain` draws.
  [[nodiscard]] OnlineParameterStats parameter(std::size_t p) const;

  [[nodiscard]] std::size_t parameter_count() const {
    return parameter_count_;
  }

 private:
  /// Per-(parameter, chain) state. Autocovariances accumulate shifted by
  /// the chain's first value (lag products of y = x - shift), which keeps
  /// the lag-product sums near the magnitude of the centered quantities
  /// they reconstruct; the exact centering to the pooled mean happens at
  /// finalization from (lag_products, shifted_sum, head, ring).
  struct ChainShard {
    stats::OnlineMoments moments;
    double shift = 0.0;
    double shifted_sum = 0.0;          ///< sum of (x - shift)
    std::vector<double> lag_products;  ///< P[l] = sum y_t y_{t-l}, l<=max_lag
    std::vector<double> head;          ///< first max_lag+1 raw values
    /// Last ring_cap_ raw values, slot t & ring_mask_. Capacity is the
    /// power of two >= max_lag_+1 so the per-draw lag loop indexes with a
    /// mask instead of a division.
    std::vector<double> ring;
    std::size_t n = 0;
  };

  void add_value(ChainShard& shard, double x);
  [[nodiscard]] const ChainShard& shard(std::size_t p, std::size_t c) const {
    return shards_[p * chain_count_ + c];
  }
  [[nodiscard]] double pooled_ess(std::size_t p, double pooled_mean) const;

  std::size_t parameter_count_;
  std::size_t chain_count_;
  std::size_t draws_per_chain_;
  std::size_t max_lag_;    ///< min(kMaxEssLag, draws_per_chain - 1)
  std::size_t ring_mask_;  ///< bit_ceil(max_lag_ + 1) - 1
  std::vector<ChainShard> shards_;  ///< [p * chain_count_ + c]

  // Chain-0 Geweke windows (geweke()'s default 10% / 50% fractions).
  std::size_t geweke_first_n_ = 0;
  std::size_t geweke_last_n_ = 0;
  std::vector<std::vector<double>> geweke_first_;  ///< per parameter
  std::vector<std::vector<double>> geweke_last_;   ///< per parameter
};

}  // namespace srm::diagnostics
