// The estimation service's line protocol.
//
// One JSON object per line in, one JSON object per line out (compact
// form, no embedded newlines). Requests:
//
//   {"op": "fit",     "project": P, "day": D?, "total": T?, MODEL..., MCMC...}
//   {"op": "predict", "project": P, "fit_days": M, MODEL..., MCMC...}
//   {"op": "release", "project": P, "day": D?, "horizon": H?,
//                     "day_cost": X?, "bug_cost": Y?, MODEL..., MCMC...}
//   {"op": "select",  "project": P, "day": D?, "total": T?, MCMC...}
//   {"op": "stats"}
//   {"op": "shutdown"}
//
//   P         "sys1" | "ntds" | {"name": "...", "counts": [n, n, ...]}
//   MODEL...  "prior": "poisson"|"negbin", "model": "model0".."model4",
//             "config": {"lambda_max", "alpha_max", "theta_max",
//                        "jeffreys", "scheme"}
//   MCMC...   "gibbs": {"chains", "burn_in", "iterations", "thin", "seed"}
//   ?         optional (day defaults to the project's last day, total to
//             its observed total). An "id" member of any JSON type is
//             echoed verbatim in the response. Unknown members are errors.
//
// Responses: {"id": ..., "ok": true, "op": "...", "hash": "...",
//             "result": {...}} followed (unless --no-meta) by the meta
// members "cache": "hit"|"disk"|"computed" and "latency_us". Failures:
// {"id": ..., "ok": false, "error": "..."} — always a complete line, never
// a partial write, whatever the input bytes were.
//
// Determinism contract at the service boundary: for a given request object
// the response body WITHOUT the meta members is byte-identical regardless
// of cache tier, worker count, or how requests interleave. The meta
// members and the `stats` payload are the documented exemptions (they
// carry wall-clock measurements and cache history by design).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/fit.hpp"
#include "core/predictive.hpp"
#include "core/release_policy.hpp"
#include "data/bug_count_data.hpp"
#include "support/json.hpp"

namespace srm::serve {

enum class Op { kFit, kPredict, kRelease, kSelect, kStats, kShutdown };

[[nodiscard]] const char* to_string(Op op);

/// A parsed, validated, defaulted request. `fit` carries the model/MCMC
/// settings for every estimation op (predict/release/select reuse its
/// prior/model/config/gibbs members).
struct Request {
  std::optional<support::Json> id;  ///< echoed verbatim when present
  Op op = Op::kStats;
  data::BugCountData project{"none", {0}};  ///< resolved dataset
                                            ///< (estimation ops only)
  core::FitRequest fit{};
  std::size_t fit_days = 0;    ///< predict: fit prefix length
  std::size_t horizon = 60;    ///< release: candidate days past `day`
  core::ReleaseCosts costs{};  ///< release
};

/// Parses and validates one request object. Throws srm::InvalidArgument
/// (with the offending member named) on any malformed, unknown, or
/// out-of-range input; never partially succeeds.
[[nodiscard]] Request parse_request(const support::Json& json);

/// The request's canonical identity hash — the posterior-cache key.
///
/// fit/select cells use artifact::cell_hash, so a serve cache directory
/// and a sweep artifact directory interoperate: a finished sweep
/// warm-starts the service. predict/release hash their op-tagged canonical
/// request JSON with the same FNV-1a. stats/shutdown have no identity.
[[nodiscard]] std::string request_hash(const Request& request);

/// Response skeletons. Meta members (cache/latency) are appended by the
/// service after the body so the body prefix never depends on them.
[[nodiscard]] support::Json make_response(const Request& request,
                                          const std::string& hash,
                                          support::Json result);
[[nodiscard]] support::Json make_error(const std::optional<support::Json>& id,
                                       const std::string& message);

/// Serializers for the result payloads that are not already covered by
/// artifact/serialize.hpp. Same contract: bit-exact doubles, fixed member
/// order.
[[nodiscard]] support::Json to_json(const core::PredictiveSummary& summary);
[[nodiscard]] support::Json to_json(const core::ReleasePlan& plan);

}  // namespace srm::serve
