// The `srm serve` subcommand: a long-running estimation service.
//
//   srm_cli serve [--store DIR] [--cache-size N] [--batch N] [--no-meta]
//                 [--summary-every N] [--socket PATH] [--threads T]
//
//   --store DIR        disk cache tier (ArtifactStore cells/ format);
//                      a finished sweep directory warm-starts the service
//   --cache-size N     in-memory LRU capacity in posteriors (default 256)
//   --batch N          max requests dispatched as one pool batch (default 64)
//   --no-meta          omit the cache/latency_us meta members — response
//                      bytes become a pure function of the request
//   --summary-every N  one-line stats summary to stderr every N requests
//   --socket PATH      listen on a unix socket instead of stdin/stdout
//   --threads T        worker threads for cold computations (0 = all cores)
//
// Protocol reference: serve/protocol.hpp.
#pragma once

#include <iosfwd>

#include "cli/args.hpp"

namespace srm::serve {

/// Runs the service until EOF on `in` (or a shutdown request / closed
/// socket). Responses go to `out`, summaries and fatal errors to `err`.
int run_serve(const cli::Args& args, std::istream& in, std::ostream& out,
              std::ostream& err);

}  // namespace srm::serve
