#include "serve/protocol.hpp"

#include <utility>
#include <vector>

#include "artifact/serialize.hpp"
#include "artifact/spec_hash.hpp"
#include "core/model_family.hpp"
#include "data/datasets.hpp"
#include "support/error.hpp"
#include "support/format.hpp"

namespace srm::serve {

namespace {

using support::Json;

/// Rejects members outside `allowed` — the strict-schema guarantee that a
/// typo like "iteratons" errors instead of silently using a default.
void reject_unknown_members(const Json& object, const char* where,
                            const std::vector<std::string_view>& allowed) {
  for (const auto& [key, value] : object.as_object()) {
    bool known = false;
    for (const auto candidate : allowed) known = known || key == candidate;
    if (!known) {
      throw InvalidArgument("unknown member \"" + key + "\" in " + where);
    }
  }
}

std::size_t member_size(const Json& object, std::string_view key,
                        std::size_t fallback) {
  const Json* value = object.find(key);
  if (value == nullptr) return fallback;
  return static_cast<std::size_t>(value->as_unsigned());
}

double member_double(const Json& object, std::string_view key,
                     double fallback) {
  const Json* value = object.find(key);
  return value == nullptr ? fallback : value->as_double();
}

Op op_from_string(const std::string& name) {
  if (name == "fit") return Op::kFit;
  if (name == "predict") return Op::kPredict;
  if (name == "release") return Op::kRelease;
  if (name == "select") return Op::kSelect;
  if (name == "stats") return Op::kStats;
  if (name == "shutdown") return Op::kShutdown;
  throw InvalidArgument("unknown op \"" + name +
                        "\" (use fit|predict|release|select|stats|shutdown)");
}

data::BugCountData parse_project(const Json& value) {
  if (value.is_string()) {
    const auto& name = value.as_string();
    if (name == "sys1") return data::sys1_grouped();
    if (name == "ntds") return data::ntds_grouped();
    throw InvalidArgument("unknown project \"" + name +
                          "\" (use sys1, ntds, or {\"name\", \"counts\"})");
  }
  if (value.is_object()) {
    reject_unknown_members(value, "project", {"name", "counts"});
    const auto& name = value.at("name").as_string();
    std::vector<std::int64_t> counts;
    for (const auto& entry : value.at("counts").as_array()) {
      counts.push_back(entry.as_int());
    }
    return data::BugCountData(name, std::move(counts));
  }
  throw InvalidArgument(
      "project must be a name string or a {\"name\", \"counts\"} object");
}

mcmc::GibbsOptions parse_gibbs(const Json* value) {
  mcmc::GibbsOptions gibbs;
  // Serve default: the streaming fit path (no retained traces). The
  // service forces keep_traces back on for the ops whose scorers walk raw
  // chains (predict/release); neither flag is part of the cache identity.
  gibbs.keep_traces = false;
  if (value == nullptr) return gibbs;
  reject_unknown_members(
      *value, "gibbs",
      {"chains", "burn_in", "iterations", "thin", "seed", "vectorized",
       "chain_lanes"});
  gibbs.chain_count = member_size(*value, "chains", gibbs.chain_count);
  gibbs.burn_in = member_size(*value, "burn_in", gibbs.burn_in);
  gibbs.iterations = member_size(*value, "iterations", gibbs.iterations);
  gibbs.thin = member_size(*value, "thin", gibbs.thin);
  if (const Json* seed = value->find("seed"); seed != nullptr) {
    gibbs.seed = static_cast<std::uint64_t>(seed->as_int());
  }
  // Result-determining (SIMD kernels fork the draws), so unlike the
  // execution flags above it joins the cache identity in canonical_gibbs.
  if (const Json* vectorized = value->find("vectorized");
      vectorized != nullptr) {
    gibbs.vectorized = vectorized->as_bool();
  }
  // Same treatment for the lane-parallel executor: its draws fork from the
  // scalar path's, so packed requests must land in their own cache cells.
  if (const Json* lanes = value->find("chain_lanes"); lanes != nullptr) {
    gibbs.chain_lanes = lanes->as_bool();
  }
  SRM_EXPECTS(gibbs.chain_count >= 1, "gibbs.chains must be >= 1");
  SRM_EXPECTS(gibbs.iterations >= 1, "gibbs.iterations must be >= 1");
  SRM_EXPECTS(gibbs.thin >= 1, "gibbs.thin must be >= 1");
  return gibbs;
}

core::HyperPriorConfig parse_config(const Json* value) {
  core::HyperPriorConfig config;
  if (value == nullptr) return config;
  reject_unknown_members(
      *value, "config",
      {"lambda_max", "alpha_max", "theta_max", "jeffreys", "scheme"});
  config.lambda_max = member_double(*value, "lambda_max", config.lambda_max);
  config.alpha_max = member_double(*value, "alpha_max", config.alpha_max);
  config.limits.theta_max =
      member_double(*value, "theta_max", config.limits.theta_max);
  if (const Json* jeffreys = value->find("jeffreys"); jeffreys != nullptr) {
    config.jeffreys_lambda0 = jeffreys->as_bool();
  }
  if (const Json* scheme = value->find("scheme"); scheme != nullptr) {
    const auto parsed = core::sampler_scheme_from_string(scheme->as_string());
    if (!parsed) {
      throw InvalidArgument("unknown sampler scheme \"" +
                            scheme->as_string() + "\"");
    }
    config.scheme = *parsed;
  }
  return config;
}

core::PriorKind parse_prior(const Json& request) {
  const Json* value = request.find("prior");
  // Absent prior: the first reproduction family (the paper's Poisson).
  if (value == nullptr) return core::reproduction_family_kinds().front();
  const auto* entry = core::find_family(value->as_string());
  if (entry == nullptr) {
    throw InvalidArgument("unknown prior \"" + value->as_string() +
                          "\" (use " + core::family_ids_joined() + ")");
  }
  return entry->kind;
}

core::DetectionModelKind parse_model(const Json& request,
                                     core::PriorKind prior) {
  const Json* value = request.find("model");
  if (value == nullptr) return core::family(prior).default_model;
  const auto parsed = core::detection_model_from_string(value->as_string());
  if (!parsed) {
    throw InvalidArgument("unknown model \"" + value->as_string() +
                          "\" (use model0..model4 or a registered "
                          "family-specific name)");
  }
  // Structured rejection listing the family's accepted models.
  core::validate_family_model(prior, *parsed);
  return *parsed;
}

/// The result-determining Gibbs fields, mirroring the artifact layer's
/// canonical form (artifact/spec_hash.cpp).
Json canonical_gibbs(const mcmc::GibbsOptions& gibbs) {
  Json json = Json::Object{};
  json.set("chain_count", Json::from_unsigned(gibbs.chain_count));
  json.set("burn_in", Json::from_unsigned(gibbs.burn_in));
  json.set("iterations", Json::from_unsigned(gibbs.iterations));
  json.set("thin", Json::from_unsigned(gibbs.thin));
  json.set("seed", static_cast<std::int64_t>(gibbs.seed));
  // Omit-if-false, mirroring the artifact layer: scalar requests keep
  // their pre-flag identity bytes, vectorized ones get distinct cells.
  if (gibbs.vectorized) json.set("vectorized", true);
  if (gibbs.chain_lanes) json.set("chain_lanes", true);
  return json;
}

Json canonical_counts(const data::BugCountData& base) {
  Json::Array counts;
  counts.reserve(base.days());
  for (const auto count : base.counts()) counts.push_back(count);
  return counts;
}

/// Op-tagged canonical identity for the request shapes that are not plain
/// sweep cells (predict/release/select).
std::string op_identity(const Request& request) {
  Json json = Json::Object{};
  json.set("op", to_string(request.op));
  json.set("counts", canonical_counts(request.project));
  json.set("prior", core::to_string(request.fit.prior));
  json.set("model", core::to_string(request.fit.model));
  json.set("config", artifact::to_json(request.fit.config));
  json.set("gibbs", canonical_gibbs(request.fit.gibbs));
  switch (request.op) {
    case Op::kPredict:
      json.set("fit_days", Json::from_unsigned(request.fit_days));
      break;
    case Op::kRelease:
      json.set("observation_day",
               Json::from_unsigned(request.fit.observation_day));
      json.set("horizon", Json::from_unsigned(request.horizon));
      json.set("day_cost", request.costs.cost_per_testing_day);
      json.set("bug_cost", request.costs.cost_per_residual_bug);
      break;
    case Op::kSelect:
      json.set("observation_day",
               Json::from_unsigned(request.fit.observation_day));
      json.set("eventual_total", request.fit.eventual_total);
      break;
    default:
      break;
  }
  return json.dump();
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kFit: return "fit";
    case Op::kPredict: return "predict";
    case Op::kRelease: return "release";
    case Op::kSelect: return "select";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

Request parse_request(const Json& json) {
  if (!json.is_object()) {
    throw InvalidArgument("request must be a JSON object");
  }
  Request request;
  if (const Json* id = json.find("id"); id != nullptr) request.id = *id;
  request.op = op_from_string(json.at("op").as_string());

  switch (request.op) {
    case Op::kStats:
    case Op::kShutdown:
      reject_unknown_members(json, "request", {"id", "op"});
      return request;
    case Op::kFit:
      reject_unknown_members(json, "request",
                             {"id", "op", "project", "day", "total", "prior",
                              "model", "config", "gibbs"});
      break;
    case Op::kPredict:
      reject_unknown_members(json, "request",
                             {"id", "op", "project", "fit_days", "prior",
                              "model", "config", "gibbs"});
      break;
    case Op::kRelease:
      reject_unknown_members(
          json, "request",
          {"id", "op", "project", "day", "horizon", "day_cost", "bug_cost",
           "prior", "model", "config", "gibbs"});
      break;
    case Op::kSelect:
      reject_unknown_members(
          json, "request",
          {"id", "op", "project", "day", "total", "config", "gibbs"});
      break;
  }

  request.project = parse_project(json.at("project"));
  request.fit.prior = parse_prior(json);
  request.fit.model = parse_model(json, request.fit.prior);
  request.fit.config = parse_config(json.find("config"));
  request.fit.gibbs = parse_gibbs(json.find("gibbs"));
  if (request.op == Op::kFit || request.op == Op::kPredict ||
      request.op == Op::kRelease) {
    // Reject result-identity forks the family does not implement up front
    // (select silently narrows its grid to the supporting families).
    core::validate_family_gibbs(request.fit.prior, request.fit.gibbs);
  }
  request.fit.observation_day =
      member_size(json, "day", request.project.days());
  SRM_EXPECTS(request.fit.observation_day >= 1, "day must be >= 1");
  if (const Json* total = json.find("total"); total != nullptr) {
    request.fit.eventual_total = total->as_int();
  } else {
    request.fit.eventual_total = request.project.total();
  }

  if (request.op == Op::kPredict) {
    request.fit_days = member_size(json, "fit_days", 0);
    SRM_EXPECTS(request.fit_days >= 1 &&
                    request.fit_days < request.project.days(),
                "fit_days must name a strict prefix of the project's series");
  }
  if (request.op == Op::kRelease) {
    request.horizon = member_size(json, "horizon", request.horizon);
    SRM_EXPECTS(request.horizon >= 1, "horizon must be >= 1");
    request.costs.cost_per_testing_day =
        member_double(json, "day_cost", request.costs.cost_per_testing_day);
    request.costs.cost_per_residual_bug =
        member_double(json, "bug_cost", request.costs.cost_per_residual_bug);
    SRM_EXPECTS(request.costs.cost_per_testing_day > 0.0,
                "day_cost must be > 0");
    SRM_EXPECTS(request.costs.cost_per_residual_bug >= 0.0,
                "bug_cost must be >= 0");
  }
  return request;
}

std::string request_hash(const Request& request) {
  switch (request.op) {
    case Op::kFit:
      // Exactly the sweep-cell identity: a serve cache and a sweep
      // artifact directory share cells.
      return artifact::cell_hash(request.project,
                                 core::to_experiment_spec(request.fit),
                                 request.fit.observation_day);
    case Op::kPredict:
    case Op::kRelease:
    case Op::kSelect:
      return artifact::hex64(artifact::fnv1a64(op_identity(request)));
    case Op::kStats:
    case Op::kShutdown:
      return "";
  }
  return "";
}

Json make_response(const Request& request, const std::string& hash,
                   Json result) {
  Json response = Json::Object{};
  if (request.id.has_value()) response.set("id", *request.id);
  response.set("ok", true);
  response.set("op", to_string(request.op));
  if (!hash.empty()) response.set("hash", hash);
  response.set("result", std::move(result));
  return response;
}

Json make_error(const std::optional<Json>& id, const std::string& message) {
  Json response = Json::Object{};
  if (id.has_value()) response.set("id", *id);
  response.set("ok", false);
  response.set("error", message);
  return response;
}

Json to_json(const core::PredictiveSummary& summary) {
  Json json = Json::Object{};
  json.set("log_score", summary.log_score);
  json.set("inconsistent_fraction", summary.inconsistent_fraction);
  json.set("mean_next_count", summary.mean_next_count);
  Json::Array cumulative;
  cumulative.reserve(summary.predicted_cumulative.size());
  for (const auto value : summary.predicted_cumulative) {
    cumulative.push_back(value);
  }
  json.set("predicted_cumulative", std::move(cumulative));
  json.set("fit_days", Json::from_unsigned(summary.fit_days));
  json.set("holdout_days", Json::from_unsigned(summary.holdout_days));
  return json;
}

Json to_json(const core::ReleasePlan& plan) {
  const auto decision_json = [](const core::ReleaseDecision& decision) {
    Json json = Json::Object{};
    json.set("day", Json::from_unsigned(decision.day));
    json.set("expected_cost", decision.expected_cost);
    json.set("expected_residual", decision.expected_residual);
    return json;
  };
  Json json = Json::Object{};
  Json::Array schedule;
  schedule.reserve(plan.schedule.size());
  for (const auto& decision : plan.schedule) {
    schedule.push_back(decision_json(decision));
  }
  json.set("schedule", std::move(schedule));
  json.set("best", decision_json(plan.best));
  return json;
}

}  // namespace srm::serve
