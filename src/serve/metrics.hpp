// Service observability: wall-clock latency measurement and aggregate
// counters for the estimation service.
//
// Determinism boundary: this module is the ONLY place in the library that
// reads a clock (monotonic_ns(), implemented in metrics.cpp — the
// documented srm-lint wallclock exemption). Everything it produces is
// advisory telemetry: latency numbers ride in the `latency_us` meta field
// and the `stats` query payload, both of which are explicitly OUTSIDE the
// byte-identity contract (`--no-meta` strips the former; the latter is the
// documented exempt payload). No clock value may flow into a result body.
#pragma once

#include <cstdint>
#include <vector>

#include "support/json.hpp"

namespace srm::serve {

/// Monotonic nanoseconds since an arbitrary epoch. Only for durations.
[[nodiscard]] std::int64_t monotonic_ns();

/// Started at construction; elapsed_us() is a duration, never a timestamp.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(monotonic_ns()) {}
  [[nodiscard]] std::int64_t elapsed_us() const {
    return (monotonic_ns() - start_ns_) / 1000;
  }

 private:
  std::int64_t start_ns_;
};

/// One tier's samples (microseconds); quantiles computed by sorting a copy
/// on demand, so record() stays O(1) on the serving path.
class LatencySeries {
 public:
  void record(std::int64_t us) { samples_.push_back(us); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// {count, p50, p90, p99, max} — zeros when empty.
  [[nodiscard]] support::Json summary() const;

 private:
  std::vector<std::int64_t> samples_;
};

}  // namespace srm::serve
