#include "serve/serve_command.hpp"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"
#include "support/error.hpp"

namespace srm::serve {

namespace {

/// Stream transport: greedily batch the lines that are already buffered
/// (up to --batch), so a piped query file fans out onto the pool while an
/// interactive session still answers every line immediately. A blank line
/// is a flush hint and produces no response.
int serve_over_stream(Service& service, std::size_t max_batch,
                      std::istream& in, std::ostream& out) {
  std::vector<std::string> batch;
  std::string line;

  const auto flush = [&] {
    if (batch.empty()) return;
    for (const auto& response : service.handle_batch(batch)) {
      out << response.line << '\n';
    }
    out.flush();
    batch.clear();
  };

  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      flush();
      continue;
    }
    batch.push_back(line);
    const bool more_buffered = in.rdbuf()->in_avail() > 0;
    if (batch.size() >= max_batch || !more_buffered) flush();
    if (service.shutdown_requested()) break;
  }
  flush();
  return 0;
}

}  // namespace

int run_serve(const cli::Args& args, std::istream& in, std::ostream& out,
              std::ostream& err) {
  if (args.has("threads")) {
    runtime::ThreadPool::set_global_thread_count(args.get_size("threads", 0));
  }

  ServiceOptions options;
  options.cache_capacity = args.get_size("cache-size", options.cache_capacity);
  if (args.has("store")) options.store_dir = args.require_string("store");
  options.meta = !args.has("no-meta");
  options.summary_every = args.get_size("summary-every", 0);
  options.summary_out = &err;
  const std::size_t max_batch = args.get_size("batch", 64);
  SRM_EXPECTS(max_batch >= 1, "--batch must be >= 1");
  const std::string socket_path = args.get_string("socket", "");

  const auto unused = args.unused();
  if (!unused.empty()) {
    throw InvalidArgument("unknown flag --" + unused.front());
  }

  Service service(options);
  if (!socket_path.empty()) {
    return serve_over_socket(service, socket_path, max_batch);
  }
  return serve_over_stream(service, max_batch, in, out);
}

}  // namespace srm::serve
