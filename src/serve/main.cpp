// srm_cli — command-line front end for the bayes-srm library.
//
// Lives in serve/ (the top of the layer DAG) so the binary can dispatch
// both the batch subcommands (cli/commands.hpp) and the long-running
// estimation service (serve/serve_command.hpp); cli/ itself must not
// depend on serve/.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "serve/serve_command.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << srm::cli::usage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "help") {
    std::cout << srm::cli::usage();
    return 0;
  }
  std::vector<std::string> flags(argv + 2, argv + argc);
  if (command == "serve") {
    try {
      const auto args = srm::cli::Args::parse(flags);
      return srm::serve::run_serve(args, std::cin, std::cout, std::cerr);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 2;
    }
  }
  return srm::cli::dispatch(command, flags, std::cout, std::cerr);
}
