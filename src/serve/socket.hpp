// Minimal unix-domain-socket transport for the estimation service.
//
// The server owns one listening socket (--socket PATH) and accepts
// connections serially: each client gets the full line protocol against
// the SAME Service instance, so the posterior cache stays warm across
// connections. One connection at a time keeps the dispatcher
// single-threaded — the concurrency lives in the compute pool, not in
// connection handling — which is what makes cache state deterministic.
#pragma once

#include <cstddef>
#include <string>

namespace srm::serve {

class Service;

/// True when this build/platform supports unix sockets (POSIX only).
[[nodiscard]] bool socket_transport_available();

/// Binds `path`, accepts connections serially, and runs the line protocol
/// over each until the peer disconnects or a shutdown request arrives.
/// Removes a stale socket file at `path` before binding and unlinks it on
/// exit. Returns the process exit code.
int serve_over_socket(Service& service, const std::string& path,
                      std::size_t max_batch);

}  // namespace srm::serve
