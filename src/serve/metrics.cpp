// The library's single clock read lives here — see metrics.hpp for the
// determinism contract and tools/srm-lint (wallclock rule) for the
// enforcement: every other file that names a clock fails the lint.
#include "serve/metrics.hpp"

#include <algorithm>
#include <chrono>

namespace srm::serve {

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

support::Json LatencySeries::summary() const {
  using support::Json;
  auto sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto quantile = [&](double q) -> std::int64_t {
    if (sorted.empty()) return 0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  };
  Json out = Json::Object{};
  out.set("count", Json::from_unsigned(sorted.size()));
  out.set("p50_us", quantile(0.50));
  out.set("p90_us", quantile(0.90));
  out.set("p99_us", quantile(0.99));
  out.set("max_us", sorted.empty() ? 0 : sorted.back());
  return out;
}

}  // namespace srm::serve
