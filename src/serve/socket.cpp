#include "serve/socket.hpp"

#include <cstddef>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SRM_SERVE_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define SRM_SERVE_HAVE_UNIX_SOCKETS 0
#endif

namespace srm::serve {

bool socket_transport_available() {
  return SRM_SERVE_HAVE_UNIX_SOCKETS != 0;
}

#if SRM_SERVE_HAVE_UNIX_SOCKETS

namespace {

/// Writes all of `text`, retrying short writes. False on a broken peer.
bool write_all(int fd, const std::string& text) {
  std::size_t written = 0;
  while (written < text.size()) {
    const auto n = ::write(fd, text.data() + written, text.size() - written);
    if (n <= 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// One connection: chunked reads, complete lines dispatched as batches.
/// Returns false when the service asked to shut the whole server down.
bool run_connection(Service& service, int fd, std::size_t max_batch) {
  std::string buffer;
  std::vector<std::string> batch;
  char chunk[4096];

  const auto flush = [&]() -> bool {
    if (batch.empty()) return true;
    std::string out;
    for (const auto& response : service.handle_batch(batch)) {
      out += response.line;
      out += '\n';
    }
    batch.clear();
    return write_all(fd, out);
  };

  while (true) {
    const auto n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      (void)flush();
      return !service.shutdown_requested();
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (true) {
      const auto newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      batch.push_back(buffer.substr(start, newline - start));
      start = newline + 1;
      if (batch.size() >= max_batch) {
        if (!flush()) return !service.shutdown_requested();
      }
    }
    buffer.erase(0, start);
    // Everything that arrived together is one batch: identical in-flight
    // requests dedup, cold cells fan out to the pool at once.
    if (!flush()) return !service.shutdown_requested();
    if (service.shutdown_requested()) return false;
  }
}

}  // namespace

int serve_over_socket(Service& service, const std::string& path,
                      std::size_t max_batch) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) throw Error("cannot create unix socket");

  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    ::close(listener);
    throw InvalidArgument("socket path too long: " + path);
  }
  path.copy(address.sun_path, path.size());
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    ::close(listener);
    throw Error("cannot bind " + path);
  }
  if (::listen(listener, 8) != 0) {
    ::close(listener);
    ::unlink(path.c_str());
    throw Error("cannot listen on " + path);
  }

  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    const bool keep_going = run_connection(service, fd, max_batch);
    ::close(fd);
    if (!keep_going) break;
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

#else

int serve_over_socket(Service&, const std::string&, std::size_t) {
  throw Error("unix sockets are not available on this platform");
}

#endif

}  // namespace srm::serve
