#include "serve/cache.hpp"

#include "support/error.hpp"

namespace srm::serve {

const char* to_string(CacheTier tier) {
  switch (tier) {
    case CacheTier::kMemory: return "hit";
    case CacheTier::kDisk: return "disk";
    case CacheTier::kComputed: return "computed";
  }
  return "?";
}

PosteriorCache::PosteriorCache(
    std::size_t capacity,
    const std::optional<std::filesystem::path>& store_dir)
    : capacity_(capacity) {
  SRM_EXPECTS(capacity >= 1, "cache capacity must be >= 1");
  if (store_dir.has_value()) store_.emplace(*store_dir);
}

void PosteriorCache::touch(
    std::list<std::pair<std::string, support::Json>>::iterator it) {
  order_.splice(order_.begin(), order_, it);
}

void PosteriorCache::insert_memory(const std::string& hash,
                                   support::Json envelope) {
  if (const auto it = index_.find(hash); it != index_.end()) {
    // Re-insert of a live entry (e.g. dedup shares): refresh in place so
    // the list never carries two nodes for one hash.
    it->second->second = std::move(envelope);
    touch(it->second);
    return;
  }
  order_.emplace_front(hash, std::move(envelope));
  index_[hash] = order_.begin();
  while (index_.size() > capacity_) {
    const auto& victim = order_.back();
    index_.erase(victim.first);
    order_.pop_back();
    ++evictions_;
  }
}

std::optional<std::pair<support::Json, CacheTier>> PosteriorCache::lookup(
    const std::string& hash) {
  if (const auto it = index_.find(hash); it != index_.end()) {
    touch(it->second);
    return std::make_pair(it->second->second, CacheTier::kMemory);
  }
  if (store_.has_value()) {
    if (auto envelope = store_->load(hash); envelope.has_value()) {
      insert_memory(hash, *envelope);
      return std::make_pair(std::move(*envelope), CacheTier::kDisk);
    }
  }
  return std::nullopt;
}

void PosteriorCache::insert(const std::string& hash, support::Json envelope) {
  if (store_.has_value()) store_->save(hash, envelope);
  insert_memory(hash, std::move(envelope));
}

}  // namespace srm::serve
