// PosteriorCache — the service's two-tier result cache.
//
//   memory tier  insertion-ordered LRU of result envelopes, keyed by the
//                request's canonical hash (serve/protocol.hpp). Capacity
//                is --cache-size entries; eviction is strictly
//                least-recently-used and, because every mutation happens
//                on the dispatcher thread in request order, the eviction
//                sequence is a deterministic function of the request
//                stream.
//   disk tier    an artifact::CellStore (--store DIR) sharing the exact
//                cells/<hash>.json envelope format with sweep artifact
//                directories — a finished sweep warm-starts the service,
//                and a long-lived service leaves a directory a sweep can
//                resume from. Optional; without it misses always compute.
//
// Byte-identity across tiers: a memory hit returns the envelope that was
// inserted; a disk hit returns Json::parse of the file that envelope was
// dumped to; a fresh computation returns the serializer's output directly.
// artifact/serialize.cpp's round-trip contract (parse(dump(x)) == x at the
// bit level) is what makes all three produce identical response bytes.
//
// Threading: NOT thread-safe by design. All cache calls happen on the
// dispatcher thread; only fit computations fan out to the pool.
#pragma once

#include <cstddef>
#include <filesystem>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "artifact/cell_store.hpp"
#include "support/json.hpp"

namespace srm::serve {

/// Where a response body came from; the `cache` meta tag.
enum class CacheTier { kMemory, kDisk, kComputed };

[[nodiscard]] const char* to_string(CacheTier tier);

class PosteriorCache {
 public:
  /// capacity >= 1 entries in memory; `store_dir` empty disables the disk
  /// tier.
  PosteriorCache(std::size_t capacity,
                 const std::optional<std::filesystem::path>& store_dir);

  /// Memory first, then disk (promoting the envelope into memory). The
  /// returned tier says which one answered; nullopt means the caller must
  /// compute.
  [[nodiscard]] std::optional<std::pair<support::Json, CacheTier>> lookup(
      const std::string& hash);

  /// Records a freshly computed envelope: inserted into the memory tier
  /// (evicting the LRU entry past capacity) and persisted to the disk tier
  /// when one is attached.
  void insert(const std::string& hash, support::Json envelope);

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t evictions() const { return evictions_; }
  [[nodiscard]] bool has_disk_tier() const { return store_.has_value(); }
  /// Memory-tier membership only (no disk probe, no LRU promotion).
  [[nodiscard]] bool contains_in_memory(const std::string& hash) const {
    return index_.find(hash) != index_.end();
  }

 private:
  void touch(std::list<std::pair<std::string, support::Json>>::iterator it);
  void insert_memory(const std::string& hash, support::Json envelope);

  std::size_t capacity_;
  std::size_t evictions_ = 0;
  /// Front = most recently used. The list owns the envelopes.
  std::list<std::pair<std::string, support::Json>> order_;
  std::map<std::string,
           std::list<std::pair<std::string, support::Json>>::iterator>
      index_;
  std::optional<artifact::CellStore> store_;
};

}  // namespace srm::serve
