// Service — the estimation service's dispatcher.
//
// handle_batch() takes the request lines that arrived together, resolves
// every estimation request through the PosteriorCache, fans the missing
// computations out onto the runtime ThreadPool (deduplicating identical
// in-flight requests so N concurrent cold copies of one query compute
// once), and assembles one response line per request, in request order.
//
// Threading model: all protocol work — parsing, cache lookups, LRU
// mutation, disk writes, response assembly — happens on the caller's
// (dispatcher) thread. Only the pure envelope computations run on pool
// workers, each writing a distinct preallocated slot. This makes cache
// state (and therefore the eviction sequence and the on-disk directory) a
// deterministic function of the request stream, for any worker count.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "support/json.hpp"

namespace srm::serve {

struct ServiceOptions {
  std::size_t cache_capacity = 256;
  /// Disk tier directory (shared cells/ format with sweep artifacts).
  std::optional<std::filesystem::path> store_dir;
  /// Append "cache"/"latency_us" meta members to ok responses. Off
  /// (--no-meta), response bytes are a pure function of the request — the
  /// form the byte-identity contract and the CI cold/warm diff use.
  bool meta = true;
  /// Write a one-line cache/latency summary to `summary_out` every N
  /// requests (0 = never).
  std::size_t summary_every = 0;
  std::ostream* summary_out = nullptr;
};

/// One response line plus the telemetry the bench driver wants without
/// re-parsing it.
struct ResponseInfo {
  std::string line;         ///< compact JSON, no trailing newline
  bool ok = false;
  std::string cache_tag;    ///< "hit"|"disk"|"computed"|"" (stats/errors)
  std::int64_t latency_us = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions options);

  /// Processes one batch; returns one ResponseInfo per input line, in
  /// input order. Blank lines yield no entry (they are flush hints).
  std::vector<ResponseInfo> handle_batch(
      const std::vector<std::string>& lines);

  /// Convenience for single-request callers (tests, bench).
  ResponseInfo handle_line(const std::string& line);

  [[nodiscard]] bool shutdown_requested() const { return shutdown_; }

  /// The `stats` query payload. Wall-clock latencies and cache history
  /// make this the documented determinism exemption.
  [[nodiscard]] support::Json stats_json() const;

  // Counter accessors for tests.
  [[nodiscard]] std::uint64_t memory_hits() const { return memory_hits_; }
  [[nodiscard]] std::uint64_t disk_hits() const { return disk_hits_; }
  [[nodiscard]] std::uint64_t computed() const { return computed_; }
  [[nodiscard]] std::uint64_t dedup_shared() const { return dedup_shared_; }
  [[nodiscard]] const PosteriorCache& cache() const { return cache_; }

 private:
  ServiceOptions options_;
  PosteriorCache cache_;
  bool shutdown_ = false;

  std::uint64_t requests_total_ = 0;
  std::uint64_t responses_ok_ = 0;
  std::uint64_t responses_error_ = 0;
  std::uint64_t memory_hits_ = 0;   ///< per request, by its cache tag
  std::uint64_t disk_hits_ = 0;
  std::uint64_t computed_ = 0;
  std::uint64_t dedup_shared_ = 0;  ///< needs that joined an in-flight twin
  std::uint64_t batches_ = 0;
  std::size_t max_batch_ = 0;
  std::uint64_t since_summary_ = 0;

  LatencySeries latency_computed_;
  LatencySeries latency_memory_;
  LatencySeries latency_disk_;

  void record_latency(const std::string& tag, std::int64_t us);
  void maybe_write_summary();
};

}  // namespace srm::serve
