#include "serve/service.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <ostream>
#include <utility>

#include "artifact/cell_store.hpp"
#include "artifact/serialize.hpp"
#include "artifact/spec_hash.hpp"
#include "core/experiment.hpp"
#include "mcmc/gibbs.hpp"
#include "runtime/task_group.hpp"
#include "support/error.hpp"
#include "support/format.hpp"

namespace srm::serve {

namespace {

using support::Json;

/// A fit-cell envelope in exactly ArtifactStore's cells/<hash>.json format,
/// so the disk tier interoperates with sweep artifact directories.
Json fit_envelope(const data::BugCountData& project,
                  const core::FitRequest& fit, const std::string& hash) {
  Json cell = Json::Object{};
  cell.set("schema_version", artifact::kSchemaVersion);
  cell.set("hash", hash);
  cell.set("prior", core::to_string(fit.prior));
  cell.set("model", core::to_string(fit.model));
  cell.set("observation_day", Json::from_unsigned(fit.observation_day));
  cell.set("result", artifact::to_json(core::fit_cell(project, fit)));
  return cell;
}

Json predict_envelope(const Request& request, const std::string& hash) {
  auto gibbs = request.fit.gibbs;
  gibbs.keep_traces = true;  // the holdout scorer walks the raw chains
  const auto summary = core::fit_and_score_holdout(
      request.project, request.fit_days, request.fit.prior, request.fit.model,
      request.fit.config, gibbs);
  Json cell = Json::Object{};
  cell.set("schema_version", artifact::kSchemaVersion);
  cell.set("hash", hash);
  cell.set("op", "predict");
  cell.set("result", to_json(summary));
  return cell;
}

Json release_envelope(const Request& request, const std::string& hash) {
  auto gibbs = request.fit.gibbs;
  gibbs.keep_traces = true;  // plan_release resamples from the stored run
  const auto observed = core::dataset_at_observation(
      request.project, request.fit.observation_day);
  const auto model =
      core::make_model(request.fit.prior, request.fit.model, observed,
                       request.fit.config, gibbs);
  const auto run = mcmc::run_gibbs(*model, gibbs);
  const auto plan = core::plan_release(*model, run, request.horizon,
                                       request.costs);
  Json cell = Json::Object{};
  cell.set("schema_version", artifact::kSchemaVersion);
  cell.set("hash", hash);
  cell.set("op", "release");
  Json result = to_json(plan);
  result.set("observation_day",
             Json::from_unsigned(request.fit.observation_day));
  cell.set("result", std::move(result));
  return cell;
}

/// The grid a select request expands to, in deterministic registry order:
/// every registered family's selection models. Families that lack a
/// requested result-identity fork (vectorized / chain lanes) are skipped,
/// mirroring the CLI's select command.
std::vector<core::FitRequest> select_grid(const Request& request) {
  std::vector<core::FitRequest> grid;
  for (const auto& entry : core::model_families().families()) {
    if (request.fit.gibbs.vectorized && !entry.supports_vectorized) continue;
    if (request.fit.gibbs.chain_lanes && !entry.supports_chain_lanes) {
      continue;
    }
    for (const auto model : entry.selection_models) {
      core::FitRequest fit = request.fit;
      fit.prior = entry.kind;
      fit.model = model;
      grid.push_back(fit);
    }
  }
  return grid;
}

/// One need = one cacheable computation a request depends on.
struct Need {
  std::string hash;
  std::function<Json()> compute;  ///< pure; runs on a pool worker
};

/// A computed-or-failed envelope slot, written by exactly one pool task.
struct Slot {
  Json value;
  std::string error;
};

struct ParsedLine {
  std::optional<Request> request;  ///< nullopt: `response` is final already
  Json response;                   ///< error response when !request
  std::vector<Need> needs;         ///< in grid order for select
};

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.store_dir) {}

ResponseInfo Service::handle_line(const std::string& line) {
  auto responses = handle_batch({line});
  SRM_EXPECTS(responses.size() == 1, "handle_line needs a non-blank line");
  return std::move(responses.front());
}

std::vector<ResponseInfo> Service::handle_batch(
    const std::vector<std::string>& lines) {
  const Stopwatch batch_watch;
  ++batches_;

  // Phase 1 (dispatcher thread): parse every line, derive each request's
  // needed computations, and resolve what the cache can answer. First
  // resolution of a hash wins; later requests in the batch share it.
  std::vector<ParsedLine> parsed;
  parsed.reserve(lines.size());
  std::map<std::string, Json> resolved;        // hash -> envelope
  std::map<std::string, CacheTier> tiers;      // hash -> first resolution
  std::vector<Need> to_compute;                // schedule order
  std::map<std::string, std::size_t> compute_slot;  // hash -> slot index

  for (const auto& line : lines) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ParsedLine entry;
    try {
      const Json json = Json::parse(line);
      Request request = parse_request(json);
      const std::string hash = request_hash(request);
      switch (request.op) {
        case Op::kFit:
          entry.needs.push_back(
              {hash, [project = request.project, fit = request.fit, hash] {
                 return fit_envelope(project, fit, hash);
               }});
          break;
        case Op::kPredict:
          entry.needs.push_back({hash, [request, hash] {
                                   return predict_envelope(request, hash);
                                 }});
          break;
        case Op::kRelease:
          entry.needs.push_back({hash, [request, hash] {
                                   return release_envelope(request, hash);
                                 }});
          break;
        case Op::kSelect:
          for (const auto& fit : select_grid(request)) {
            const std::string cell = artifact::cell_hash(
                request.project, core::to_experiment_spec(fit),
                fit.observation_day);
            entry.needs.push_back(
                {cell, [project = request.project, fit, cell] {
                   return fit_envelope(project, fit, cell);
                 }});
          }
          break;
        case Op::kStats:
        case Op::kShutdown:
          break;
      }
      entry.request = std::move(request);
    } catch (const std::exception& error) {
      std::optional<Json> id;
      // Fish the id back out for the error response when the line at
      // least parsed as an object (parse_request failures).
      try {
        const Json json = Json::parse(line);
        if (json.is_object()) {
          if (const Json* found = json.find("id")) id = *found;
        }
      } catch (...) {
      }
      entry.response = make_error(id, error.what());
    }

    if (entry.request.has_value()) {
      for (const auto& need : entry.needs) {
        if (const auto it = tiers.find(need.hash); it != tiers.end()) {
          if (it->second == CacheTier::kComputed) ++dedup_shared_;
          continue;
        }
        if (auto hit = cache_.lookup(need.hash); hit.has_value()) {
          tiers.emplace(need.hash, hit->second);
          resolved.emplace(need.hash, std::move(hit->first));
          continue;
        }
        tiers.emplace(need.hash, CacheTier::kComputed);
        compute_slot.emplace(need.hash, to_compute.size());
        to_compute.push_back(need);
      }
    }
    parsed.push_back(std::move(entry));
  }
  max_batch_ = std::max(max_batch_, parsed.size());

  // Phase 2 (pool workers): every unique cold computation runs once —
  // in-flight dedup is the compute_slot map. Each task owns one slot, so
  // no synchronization beyond the TaskGroup barrier is needed.
  std::vector<Slot> slots(to_compute.size());
  if (!to_compute.empty()) {
    runtime::TaskGroup group;
    for (std::size_t i = 0; i < to_compute.size(); ++i) {
      group.run([&slot = slots[i], &need = to_compute[i]] {
        try {
          slot.value = need.compute();
        } catch (const std::exception& error) {
          slot.error = error.what();
        }
      });
    }
    group.wait();
  }

  // Phase 3 (dispatcher thread): persist fresh envelopes in schedule order
  // (deterministic LRU/eviction/disk sequence), then assemble responses in
  // request order.
  for (std::size_t i = 0; i < to_compute.size(); ++i) {
    if (slots[i].error.empty()) {
      cache_.insert(to_compute[i].hash, slots[i].value);
      resolved.emplace(to_compute[i].hash, std::move(slots[i].value));
    }
  }

  const auto envelope_of =
      [&](const std::string& hash) -> std::pair<const Json*, std::string> {
    if (const auto it = resolved.find(hash); it != resolved.end()) {
      return {&it->second, {}};
    }
    const auto slot = compute_slot.find(hash);
    SRM_EXPECTS(slot != compute_slot.end(), "lost envelope for " + hash);
    return {nullptr, slots[slot->second].error};
  };

  std::vector<ResponseInfo> responses;
  responses.reserve(parsed.size());
  for (auto& entry : parsed) {
    ++requests_total_;
    ResponseInfo info;
    Json response;
    if (!entry.request.has_value()) {
      response = std::move(entry.response);
    } else {
      const Request& request = *entry.request;
      switch (request.op) {
        case Op::kStats:
          response = make_response(request, "", stats_json());
          break;
        case Op::kShutdown: {
          shutdown_ = true;
          Json result = Json::Object{};
          result.set("shutting_down", true);
          response = make_response(request, "", std::move(result));
          break;
        }
        case Op::kFit:
        case Op::kPredict:
        case Op::kRelease: {
          const auto& need = entry.needs.front();
          const auto [envelope, error] = envelope_of(need.hash);
          if (envelope == nullptr) {
            response = make_error(request.id, error);
          } else {
            response =
                make_response(request, need.hash, envelope->at("result"));
            info.cache_tag = to_string(tiers.at(need.hash));
          }
          break;
        }
        case Op::kSelect: {
          // Rank the grid by WAIC (ascending; stable on ties, so grid
          // order breaks them deterministically).
          std::string error;
          std::vector<std::pair<double, Json>> rows;
          bool all_memory = true;
          bool any_computed = false;
          for (const auto& need : entry.needs) {
            const auto [envelope, cell_error] = envelope_of(need.hash);
            if (envelope == nullptr) {
              error = cell_error;
              break;
            }
            const auto tier = tiers.at(need.hash);
            all_memory = all_memory && tier == CacheTier::kMemory;
            any_computed = any_computed || tier == CacheTier::kComputed;
            const Json& result = envelope->at("result");
            Json row = Json::Object{};
            row.set("prior", envelope->at("prior"));
            row.set("model", envelope->at("model"));
            row.set("hash", need.hash);
            row.set("waic", result.at("waic").at("waic"));
            row.set("residual_mean",
                    result.at("posterior").at("summary").at("mean"));
            rows.emplace_back(result.at("waic").at("waic").as_double(),
                              std::move(row));
          }
          if (!error.empty()) {
            response = make_error(request.id, error);
            break;
          }
          std::stable_sort(rows.begin(), rows.end(),
                           [](const auto& a, const auto& b) {
                             return a.first < b.first;
                           });
          Json result = Json::Object{};
          Json::Array ranked;
          ranked.reserve(rows.size());
          for (auto& [waic, row] : rows) ranked.push_back(std::move(row));
          result.set("ranking", std::move(ranked));
          result.set("best", result.at("ranking").as_array().front());
          response = make_response(request, request_hash(request),
                                   std::move(result));
          info.cache_tag =
              all_memory ? to_string(CacheTier::kMemory)
                         : (any_computed ? to_string(CacheTier::kComputed)
                                         : to_string(CacheTier::kDisk));
          break;
        }
      }
    }

    info.ok = response.at("ok").as_bool();
    info.latency_us = batch_watch.elapsed_us();
    if (info.ok) {
      ++responses_ok_;
    } else {
      ++responses_error_;
    }
    if (!info.cache_tag.empty()) {
      if (info.cache_tag == to_string(CacheTier::kMemory)) ++memory_hits_;
      if (info.cache_tag == to_string(CacheTier::kDisk)) ++disk_hits_;
      if (info.cache_tag == to_string(CacheTier::kComputed)) ++computed_;
      record_latency(info.cache_tag, info.latency_us);
      if (options_.meta) {
        response.set("cache", info.cache_tag);
        response.set("latency_us", info.latency_us);
      }
    }
    info.line = response.dump();
    responses.push_back(std::move(info));
    ++since_summary_;
    maybe_write_summary();
  }
  return responses;
}

void Service::record_latency(const std::string& tag, std::int64_t us) {
  if (tag == to_string(CacheTier::kMemory)) {
    latency_memory_.record(us);
  } else if (tag == to_string(CacheTier::kDisk)) {
    latency_disk_.record(us);
  } else {
    latency_computed_.record(us);
  }
}

Json Service::stats_json() const {
  Json stats = Json::Object{};
  stats.set("requests_total", Json::from_unsigned(requests_total_));
  stats.set("responses_ok", Json::from_unsigned(responses_ok_));
  stats.set("responses_error", Json::from_unsigned(responses_error_));

  Json cache = Json::Object{};
  cache.set("memory_hits", Json::from_unsigned(memory_hits_));
  cache.set("disk_hits", Json::from_unsigned(disk_hits_));
  cache.set("computed", Json::from_unsigned(computed_));
  cache.set("dedup_shared", Json::from_unsigned(dedup_shared_));
  cache.set("evictions", Json::from_unsigned(cache_.evictions()));
  cache.set("size", Json::from_unsigned(cache_.size()));
  cache.set("capacity", Json::from_unsigned(cache_.capacity()));
  cache.set("disk_tier", cache_.has_disk_tier());
  stats.set("cache", std::move(cache));

  Json batches = Json::Object{};
  batches.set("count", Json::from_unsigned(batches_));
  batches.set("max_batch", Json::from_unsigned(max_batch_));
  stats.set("batches", std::move(batches));

  Json latency = Json::Object{};
  latency.set("computed", latency_computed_.summary());
  latency.set("hit", latency_memory_.summary());
  latency.set("disk", latency_disk_.summary());
  stats.set("latency", std::move(latency));
  return stats;
}

void Service::maybe_write_summary() {
  if (options_.summary_every == 0 || options_.summary_out == nullptr) return;
  if (since_summary_ < options_.summary_every) return;
  since_summary_ = 0;
  const std::uint64_t answered = memory_hits_ + disk_hits_ + computed_;
  const double hit_rate =
      answered == 0
          ? 0.0
          : static_cast<double>(memory_hits_ + disk_hits_) /
                static_cast<double>(answered);
  *options_.summary_out
      << "[serve] requests=" << support::dec(requests_total_)
      << " hit=" << support::dec(memory_hits_)
      << " disk=" << support::dec(disk_hits_)
      << " computed=" << support::dec(computed_)
      << " hit_rate=" << support::fixed(hit_rate, 3)
      << " lru=" << support::dec(cache_.size()) << "/"
      << support::dec(cache_.capacity())
      << " evictions=" << support::dec(cache_.evictions())
      << " max_batch=" << support::dec(max_batch_) << "\n";
}

}  // namespace srm::serve
