// Variate samplers. All take the caller's Rng so streams stay explicit.
//
// Algorithms:
//  * normal       — Marsaglia polar method
//  * exponential  — inversion
//  * gamma        — Marsaglia–Tsang squeeze (with the a<1 boost)
//  * beta         — ratio of gammas
//  * poisson      — inversion for small mean, PTRS transformed rejection
//                   (Hörmann 1993) for large mean
//  * binomial     — inversion for small n*p, BTRS transformed rejection
//  * negative_binomial — gamma–Poisson mixture (valid for real alpha > 0)
//  * truncated_gamma   — inverse-CDF via the regularized incomplete gamma
//
// Each sampler is unit-tested against analytic moments and chi-square /
// Kolmogorov–Smirnov goodness-of-fit in tests/random/.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "random/rng.hpp"

namespace srm::random {

/// Standard normal variate.
double sample_normal(Rng& rng);

/// Normal with the given mean and standard deviation (sd > 0).
double sample_normal(Rng& rng, double mean, double sd);

/// Exponential with rate lambda > 0.
double sample_exponential(Rng& rng, double lambda);

/// Gamma with shape > 0 and rate > 0 (mean = shape / rate).
double sample_gamma(Rng& rng, double shape, double rate);

/// Beta with parameters a, b > 0.
double sample_beta(Rng& rng, double a, double b);

/// Poisson with mean >= 0. Returns a count.
std::int64_t sample_poisson(Rng& rng, double mean);

/// Binomial with n >= 0 trials and success probability p in [0, 1].
std::int64_t sample_binomial(Rng& rng, std::int64_t n, double p);

/// Negative binomial with real shape alpha > 0 and success probability
/// beta in (0, 1): pmf C(k+alpha-1, k) beta^alpha (1-beta)^k, mean
/// alpha (1-beta)/beta.
std::int64_t sample_negative_binomial(Rng& rng, double alpha, double beta);

/// Gamma(shape, rate) truncated to (0, upper]. Uses inverse-CDF through the
/// regularized incomplete gamma, so it is exact (no rejection loops that
/// could stall when the truncation removes most of the mass).
double sample_truncated_gamma(Rng& rng, double shape, double rate,
                              double upper);

/// Samples an index with probability proportional to weights[i] (>= 0,
/// not all zero). Linear scan; fine for the small supports used here.
std::size_t sample_categorical(Rng& rng, std::span<const double> weights);

/// Walker alias table for repeated categorical sampling from one
/// distribution — O(n) build, O(1) per draw.
class AliasTable {
 public:
  explicit AliasTable(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace srm::random
