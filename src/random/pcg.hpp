// Permuted congruential generators (O'Neill 2014), implemented from the
// published reference algorithms, plus SplitMix64 for seed expansion.
//
// Pcg32 is the pcg32_random_r XSH-RR variant: 64-bit LCG state, 32-bit
// output. Pcg64 here is two independently-streamed Pcg32 halves glued
// together — statistically more than sufficient for Monte Carlo work and
// fully deterministic across platforms (no __int128 dependency).
#pragma once

#include <cstdint>

namespace srm::random {

/// SplitMix64 (Vigna) — used to expand a single user seed into the many
/// state/stream words the other engines need. Passes BigCrush.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// pcg32 (XSH-RR 64/32). Satisfies std::uniform_random_bit_generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}

  constexpr Pcg32(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
    operator()();
    state_ += seed;
    operator()();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  constexpr result_type operator()() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;  // must be odd; selects the stream
};

/// 64-bit generator built from two pcg32 streams (hi/lo words).
class Pcg64 {
 public:
  using result_type = std::uint64_t;

  constexpr Pcg64() : Pcg64(0x2545f4914f6cdd1dULL) {}

  explicit constexpr Pcg64(std::uint64_t seed) : hi_(0, 0), lo_(0, 0) {
    SplitMix64 mix(seed);
    const std::uint64_t s1 = mix.next();
    const std::uint64_t t1 = mix.next();
    const std::uint64_t s2 = mix.next();
    const std::uint64_t t2 = mix.next();
    hi_ = Pcg32(s1, t1);
    lo_ = Pcg32(s2, t2 | 1u);  // distinct stream from hi_ (inc differs)
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    return (static_cast<std::uint64_t>(hi_()) << 32) | lo_();
  }

 private:
  Pcg32 hi_;
  Pcg32 lo_;
};

}  // namespace srm::random
