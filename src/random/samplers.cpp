#include "random/samplers.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/fp.hpp"
#include "support/math.hpp"

namespace srm::random {

namespace {

// Poisson by multiplicative inversion — O(mean), good for mean <~ 30.
std::int64_t poisson_inversion(Rng& rng, double mean) {
  const double threshold = std::exp(-mean);
  std::int64_t k = 0;
  double product = rng.uniform_open();
  while (product > threshold) {
    ++k;
    product *= rng.uniform_open();
  }
  return k;
}

// Poisson by the PTRS transformed-rejection method (Hörmann 1993),
// valid for mean >= 10.
std::int64_t poisson_ptrs(Rng& rng, double mean) {
  const double log_mean = std::log(mean);
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = rng.uniform_open() - 0.5;
    const double v = rng.uniform_open();
    const double us = 0.5 - std::abs(u);
    const auto k = static_cast<std::int64_t>(
        std::floor((2.0 * a / us + b) * u + mean + 0.43));
    if (us >= 0.07 && v <= v_r) return k;
    if (k < 0 || (us < 0.013 && v > us)) continue;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        -mean + static_cast<double>(k) * log_mean - math::log_factorial(k)) {
      return k;
    }
  }
}

// Binomial by inversion — O(n p), used for small expected counts.
std::int64_t binomial_inversion(Rng& rng, std::int64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  double r = std::pow(q, static_cast<double>(n));
  double u = rng.uniform_open();
  std::int64_t k = 0;
  while (u > r) {
    u -= r;
    ++k;
    if (k > n) {  // numerical tail underflow; clamp
      return n;
    }
    r *= a / static_cast<double>(k) - s;
  }
  return k;
}

// Binomial via the BTRS transformed-rejection method (Hörmann 1993),
// requires n*p >= 10 and p <= 0.5.
std::int64_t binomial_btrs(Rng& rng, std::int64_t n, double p) {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double spq = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(p / q);
  const double m = std::floor((nd + 1) * p);
  const double h = math::log_factorial(static_cast<std::int64_t>(m)) +
                   math::log_factorial(static_cast<std::int64_t>(nd - m));
  for (;;) {
    const double u = rng.uniform_open() - 0.5;
    const double v = rng.uniform_open();
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    const auto k = static_cast<std::int64_t>(kd);
    if (us >= 0.07 && v <= v_r) return k;
    const double f =
        h - math::log_factorial(k) -
        math::log_factorial(static_cast<std::int64_t>(nd) - k) +
        (kd - m) * lpq;
    if (std::log(v * alpha / (a / (us * us) + b)) <= f) return k;
  }
}

}  // namespace

double sample_normal(Rng& rng) {
  // Marsaglia polar method; the spare variate is intentionally discarded to
  // keep the sampler stateless (reproducibility beats a 2x constant).
  for (;;) {
    const double u = 2.0 * rng.uniform_open() - 1.0;
    const double v = 2.0 * rng.uniform_open() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Rng& rng, double mean, double sd) {
  SRM_EXPECTS(sd > 0.0, "sample_normal requires sd > 0");
  return mean + sd * sample_normal(rng);
}

double sample_exponential(Rng& rng, double lambda) {
  SRM_EXPECTS(lambda > 0.0, "sample_exponential requires lambda > 0");
  return -std::log(rng.uniform_open()) / lambda;
}

double sample_gamma(Rng& rng, double shape, double rate) {
  SRM_EXPECTS(shape > 0.0, "sample_gamma requires shape > 0");
  SRM_EXPECTS(rate > 0.0, "sample_gamma requires rate > 0");
  if (shape < 1.0) {
    // Boost: X_a = X_{a+1} * U^{1/a}.
    const double u = rng.uniform_open();
    return sample_gamma(rng, shape + 1.0, rate) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = sample_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform_open();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v / rate;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v / rate;
    }
  }
}

double sample_beta(Rng& rng, double a, double b) {
  SRM_EXPECTS(a > 0.0 && b > 0.0, "sample_beta requires a, b > 0");
  const double x = sample_gamma(rng, a, 1.0);
  const double y = sample_gamma(rng, b, 1.0);
  const double s = x + y;
  if (s <= 0.0) return 0.5;  // both underflowed; a,b tiny — return midpoint
  return x / s;
}

std::int64_t sample_poisson(Rng& rng, double mean) {
  SRM_EXPECTS(mean >= 0.0 && std::isfinite(mean),
              "sample_poisson requires finite mean >= 0");
  if (fp::is_zero(mean)) return 0;
  if (mean < 30.0) return poisson_inversion(rng, mean);
  return poisson_ptrs(rng, mean);
}

std::int64_t sample_binomial(Rng& rng, std::int64_t n, double p) {
  SRM_EXPECTS(n >= 0, "sample_binomial requires n >= 0");
  SRM_EXPECTS(p >= 0.0 && p <= 1.0, "sample_binomial requires p in [0, 1]");
  if (n == 0 || fp::is_zero(p)) return 0;
  if (fp::is_one(p)) return n;
  if (p > 0.5) return n - sample_binomial(rng, n, 1.0 - p);
  if (static_cast<double>(n) * p < 10.0) return binomial_inversion(rng, n, p);
  return binomial_btrs(rng, n, p);
}

std::int64_t sample_negative_binomial(Rng& rng, double alpha, double beta) {
  SRM_EXPECTS(alpha > 0.0, "sample_negative_binomial requires alpha > 0");
  SRM_EXPECTS(beta > 0.0 && beta < 1.0,
              "sample_negative_binomial requires beta in (0, 1)");
  // Gamma–Poisson mixture: K | L ~ Poisson(L), L ~ Gamma(alpha, beta/(1-beta)).
  const double mixing = sample_gamma(rng, alpha, beta / (1.0 - beta));
  return sample_poisson(rng, mixing);
}

double sample_truncated_gamma(Rng& rng, double shape, double rate,
                              double upper) {
  SRM_EXPECTS(shape > 0.0, "sample_truncated_gamma requires shape > 0");
  SRM_EXPECTS(rate > 0.0, "sample_truncated_gamma requires rate > 0");
  SRM_EXPECTS(upper > 0.0, "sample_truncated_gamma requires upper > 0");
  const double cap = math::regularized_gamma_p(shape, rate * upper);
  if (cap <= 0.0) {
    // All mass numerically beyond `upper`; the distribution piles up at the
    // boundary — return it (happens only for extreme shape/upper ratios).
    return upper;
  }
  const double u = rng.uniform_open() * cap;
  const double x = math::inverse_regularized_gamma_p(shape, u) / rate;
  return std::min(x, upper);
}

std::size_t sample_categorical(Rng& rng, std::span<const double> weights) {
  SRM_EXPECTS(!weights.empty(), "sample_categorical requires weights");
  double total = 0.0;
  for (const double w : weights) {
    SRM_EXPECTS(w >= 0.0 && std::isfinite(w),
                "sample_categorical weights must be finite and >= 0");
    total += w;
  }
  SRM_EXPECTS(total > 0.0, "sample_categorical weights must not all be zero");
  double target = rng.uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (target < weights[i]) return i;
    target -= weights[i];
  }
  return weights.size() - 1;
}

AliasTable::AliasTable(std::span<const double> weights) {
  SRM_EXPECTS(!weights.empty(), "AliasTable requires weights");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (const double w : weights) {
    SRM_EXPECTS(w >= 0.0 && std::isfinite(w),
                "AliasTable weights must be finite and >= 0");
    total += w;
  }
  SRM_EXPECTS(total > 0.0, "AliasTable weights must not all be zero");

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) probability_[i] = 1.0;
  for (const std::uint32_t i : small) probability_[i] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t column = rng.uniform_index(probability_.size());
  return rng.uniform() < probability_[column] ? column : alias_[column];
}

}  // namespace srm::random

namespace srm::random {

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SRM_EXPECTS(n > 0, "uniform_index requires n > 0");
  // Lemire's nearly-divisionless method with rejection of the biased zone.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t x = next_u64();
    // 128-bit multiply-high via two 64x64 partials.
    const std::uint64_t x_lo = x & 0xffffffffULL;
    const std::uint64_t x_hi = x >> 32;
    const std::uint64_t n_lo = n & 0xffffffffULL;
    const std::uint64_t n_hi = n >> 32;
    const std::uint64_t lo_lo = x_lo * n_lo;
    const std::uint64_t hi_lo = x_hi * n_lo;
    const std::uint64_t lo_hi = x_lo * n_hi;
    const std::uint64_t hi_hi = x_hi * n_hi;
    const std::uint64_t cross =
        (lo_lo >> 32) + (hi_lo & 0xffffffffULL) + lo_hi;
    const std::uint64_t product_lo = (cross << 32) | (lo_lo & 0xffffffffULL);
    const std::uint64_t product_hi = hi_hi + (hi_lo >> 32) + (cross >> 32);
    if (product_lo >= threshold) return product_hi;
  }
}

}  // namespace srm::random
