// The library-wide random number generator handle.
//
// Every stochastic routine in bayes-srm takes an `Rng&`; nothing touches
// global state, so experiments are reproducible from a single seed and
// chains can run on independent deterministic streams via `split()`.
#pragma once

#include <cstdint>

#include "random/pcg.hpp"

namespace srm::random {

class Rng {
 public:
  /// Default seed gives a documented, fixed stream (used by examples).
  Rng() : Rng(0x5eedc0dedeadbeefULL) {}

  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform double in the half-open interval [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1) — never returns an exact endpoint; safe for
  /// log() and quantile transforms.
  double uniform_open() {
    // 53-bit mantissa offset by half an ulp keeps the value in (0,1).
    return (static_cast<double>(engine_() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) by Lemire's multiply-shift with rejection.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Raw 64 random bits.
  std::uint64_t next_u64() { return engine_(); }

  /// A new, statistically independent generator derived from this one.
  /// Used to give each MCMC chain its own stream.
  Rng split() {
    SplitMix64 mix(engine_());
    return Rng(mix.next());
  }

  /// The seed this generator was constructed with (for logging).
  std::uint64_t seed() const { return seed_; }

  // Satisfy std::uniform_random_bit_generator so <random> adaptors work too.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return Pcg64::min(); }
  static constexpr result_type max() { return Pcg64::max(); }
  result_type operator()() { return engine_(); }

 private:
  Pcg64 engine_;
  std::uint64_t seed_;
};

}  // namespace srm::random
