// Minimal command-line flag parser for the srm_cli tool.
//
// Grammar: `srm_cli <command> [--name value]... [--switch]...`.
// Unknown flags are an error; every accessor validates its type and
// reports the offending flag by name.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace srm::cli {

class Args {
 public:
  /// Parses `argv`-style tokens (excluding the program and command names).
  /// Throws srm::InvalidArgument on malformed input (flag without a value
  /// is allowed — it becomes a boolean switch).
  static Args parse(const std::vector<std::string>& tokens);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::string require_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  /// Non-negative integer flag (counts, sizes, thread counts). Rejects
  /// negative values with an error naming the flag.
  [[nodiscard]] std::size_t get_size(const std::string& name,
                                     std::size_t fallback) const;

  /// Names that were never read — used to reject typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace srm::cli
