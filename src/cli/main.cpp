// srm_cli — command-line front end for the bayes-srm library.
// See cli/commands.hpp for the subcommand reference.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << srm::cli::usage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "help") {
    std::cout << srm::cli::usage();
    return 0;
  }
  std::vector<std::string> flags(argv + 2, argv + argc);
  return srm::cli::dispatch(command, flags, std::cout, std::cerr);
}
