#include "cli/commands.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <ostream>
#include <sstream>

#include "artifact/serialize.hpp"
#include "artifact/store.hpp"
#include "core/experiment.hpp"
#include "core/fit.hpp"
#include "core/loo.hpp"
#include "core/model_averaging.hpp"
#include "core/streaming.hpp"
#include "core/release_policy.hpp"
#include "core/predictive.hpp"
#include "data/datasets.hpp"
#include "data/generator.hpp"
#include "mle/mle_fit.hpp"
#include "nhpp/nhpp_fit.hpp"
#include "report/sweep.hpp"
#include "report/tables.hpp"
#include "runtime/thread_pool.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace srm::cli {

namespace {

data::BugCountData load_dataset(const Args& args,
                                const std::string& fallback = "") {
  const std::string source = fallback.empty()
                                 ? args.require_string("csv")
                                 : args.get_string("csv", fallback);
  data::BugCountData data = [&] {
    if (source == "sys1") return data::sys1_grouped();
    if (source == "ntds") return data::ntds_grouped();
    return data::BugCountData::from_csv_file(source);
  }();
  // --days truncates inside the series and zero-pads (virtual testing)
  // beyond it.
  const auto days = args.get_int("days", 0);
  if (days > 0) {
    if (static_cast<std::size_t>(days) <= data.days()) {
      data = data.truncated(static_cast<std::size_t>(days));
    } else {
      data = data.with_virtual_testing(static_cast<std::size_t>(days));
    }
  }
  return data;
}

core::PriorKind parse_prior(const Args& args) {
  const std::string prior = args.get_string("prior", "poisson");
  if (const auto* entry = core::find_family(prior)) return entry->kind;
  throw InvalidArgument("unknown --prior '" + prior + "' (use " +
                        core::family_ids_joined() + ")");
}

/// "model0|model1|...": the accepted --model values, straight from the
/// detection-model registry so this text can never drift from the enum.
std::string model_names_joined() {
  std::string joined;
  for (const auto& name : core::detection_model_names()) {
    if (!joined.empty()) joined += '|';
    joined += name;
  }
  return joined;
}

core::DetectionModelKind parse_model_name(const Args& args,
                                          const std::string& fallback) {
  const std::string name = args.get_string("model", fallback);
  if (const auto kind = core::detection_model_from_string(name)) return *kind;
  throw InvalidArgument("unknown --model '" + name + "' (use " +
                        model_names_joined() + ")");
}

/// Family-aware --model: the historical CLI default is model1 where the
/// family accepts it; otherwise the family's registry default (e.g. the
/// size-biased family's single multinomial likelihood). The parsed kind is
/// validated against the family's accepted set, so a mismatch produces the
/// registry's structured error listing the family's own model names.
core::DetectionModelKind parse_model(const Args& args,
                                     core::PriorKind prior) {
  const auto& entry = core::family(prior);
  std::string fallback = "model1";
  const auto historical = core::detection_model_from_string(fallback);
  if (!historical ||
      std::find(entry.accepted_models.begin(), entry.accepted_models.end(),
                *historical) == entry.accepted_models.end()) {
    fallback = core::to_string(entry.default_model);
  }
  const auto kind = parse_model_name(args, fallback);
  core::validate_family_model(prior, kind);
  return kind;
}

mcmc::GibbsOptions parse_gibbs(const Args& args) {
  mcmc::GibbsOptions gibbs;
  gibbs.chain_count = args.get_size("chains", 2);
  gibbs.burn_in = args.get_size("burn-in", 500);
  gibbs.iterations = args.get_size("iterations", 2500);
  gibbs.thin = args.get_size("thin", 1);
  gibbs.seed = static_cast<std::uint64_t>(args.get_int("seed", 20240624));
  // Every reported number is bit-identical between the streaming and the
  // stored-trace path, so the CLI defaults to streaming (O(1) memory in the
  // retained draw count); --keep-traces restores full chain storage.
  // Commands that consume the raw run (predict, release) force it back on.
  gibbs.keep_traces = args.has("keep-traces");
  // Opt-in SIMD batch kernels; forks result identity (see GibbsOptions).
  gibbs.vectorized = args.has("vectorized");
  // Opt-in lane-parallel chain executor; its own identity fork, orthogonal
  // to --vectorized (see GibbsOptions::chain_lanes).
  gibbs.chain_lanes = args.has("chain-lanes");
  return gibbs;
}

// --threads N sizes the shared execution pool every parallel stage runs on
// (MCMC chains, sweep cells, WAIC/LOO scoring). 0 = all hardware threads
// (or the SRM_THREADS environment override). Results are bit-identical for
// any value; the flag only changes wall-clock time.
void configure_runtime(const Args& args) {
  if (!args.has("threads")) return;
  runtime::ThreadPool::set_global_thread_count(args.get_size("threads", 0));
}

core::HyperPriorConfig parse_config(const Args& args) {
  core::HyperPriorConfig config;
  config.lambda_max = args.get_double("lambda-max", config.lambda_max);
  config.alpha_max = args.get_double("alpha-max", config.alpha_max);
  config.limits.theta_max =
      args.get_double("theta-max", config.limits.theta_max);
  config.jeffreys_lambda0 = args.has("jeffreys");
  return config;
}

void reject_unused(const Args& args) {
  const auto unused = args.unused();
  if (!unused.empty()) {
    throw InvalidArgument("unknown flag --" + unused.front());
  }
}

/// "48,67,86" -> {48, 67, 86}.
std::vector<std::size_t> parse_day_list(const std::string& text) {
  std::vector<std::size_t> days;
  std::size_t start = 0;
  while (true) {
    const auto comma = text.find(',', start);
    const auto length =
        comma == std::string::npos ? text.size() - start : comma - start;
    const auto value = support::parse_count(text.substr(start, length));
    SRM_EXPECTS(value > 0, "--obs-days entries must be positive");
    days.push_back(static_cast<std::size_t>(value));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return days;
}

}  // namespace

int run_fit(const Args& args, std::ostream& out) {
  const auto data = load_dataset(args);
  core::FitRequest request;
  request.prior = parse_prior(args);
  request.model = parse_model(args, request.prior);
  request.config = parse_config(args);
  request.gibbs = parse_gibbs(args);
  request.observation_day = data.days();
  request.eventual_total = data.total();
  const std::string format = args.get_string("format", "table");
  SRM_EXPECTS(format == "table" || format == "json",
              "unknown --format '" + format + "' (use table|json)");
  reject_unused(args);

  const auto result = core::fit_cell(data, request);
  if (format == "json") {
    support::Json json = support::Json::Object{};
    json.set("dataset", data.name());
    json.set("prior", core::to_string(request.prior));
    json.set("model", core::to_string(request.model));
    json.set("result", artifact::to_json(result));
    out << json.dump(2);
    return 0;
  }
  out << "dataset: " << data.name() << " (" << data.total() << " bugs / "
      << data.days() << " days)\n";
  out << "model: " << core::to_string(request.prior) << " prior, "
      << core::to_string(request.model) << "\n\n";
  const auto& s = result.posterior.summary;
  out << "residual bug posterior:\n";
  out << "  mean   " << support::format_double(s.mean, 3) << '\n';
  out << "  median " << s.median << '\n';
  out << "  mode   " << s.mode << '\n';
  out << "  sd     " << support::format_double(s.sd, 3) << '\n';
  out << "\nWAIC " << support::format_double(result.waic.waic, 3) << "\n\n";
  support::Table t;
  t.set_header({"parameter", "mean", "PSRF", "Geweke Z", "ESS"});
  for (const auto& diag : result.diagnostics) {
    t.add_row({diag.name, support::format_double(diag.posterior_mean, 4),
               support::format_double(diag.psrf, 3),
               support::format_double(diag.geweke_z, 3),
               support::format_double(diag.ess, 0)});
  }
  out << t.render();
  return 0;
}

int run_select(const Args& args, std::ostream& out) {
  const auto data = load_dataset(args);
  const auto gibbs = parse_gibbs(args);
  const auto config = parse_config(args);
  const std::string format = args.get_string("format", "table");
  SRM_EXPECTS(format == "table" || format == "json",
              "unknown --format '" + format + "' (use table|json)");
  reject_unused(args);

  struct Row {
    std::string prior;
    std::string model;
    core::WaicResult waic;
    double looic;
    core::ResidualPosterior posterior;
    double weight;
  };
  std::vector<Row> rows;
  // The selection grid is the registry: every family's selection_models
  // columns, in registration order. Families lacking a requested result-
  // identity fork are excluded from that fork's grid (they have no sampler
  // for it), keeping the fork runs deterministic.
  for (const auto& entry : core::model_families().families()) {
    if ((gibbs.vectorized && !entry.supports_vectorized) ||
        (gibbs.chain_lanes && !entry.supports_chain_lanes)) {
      continue;
    }
    for (const auto kind : entry.selection_models) {
      const auto model = core::make_model(entry.kind, kind, data, config,
                                          gibbs);
      Row row{entry.id, core::to_string(kind), {}, 0.0, {}, 0.0};
      if (gibbs.keep_traces) {
        const auto run = mcmc::run_gibbs(*model, gibbs);
        row.waic = core::compute_waic(*model, run);
        row.looic = core::compute_psis_loo(*model, run).looic;
        row.posterior = core::summarize_residual_posterior(run);
      } else {
        // Streaming path: score each draw in-scan; PSIS-LOO still needs the
        // raw pointwise columns for its tail fits, so the scorer keeps the
        // flat matrix while the traces themselves are never stored.
        core::StreamingScorer scorer(*model, gibbs.chain_count,
                                     gibbs.iterations, /*keep_matrix=*/true);
        core::ResidualAccumulator residual(model->residual_index(),
                                           gibbs.chain_count,
                                           gibbs.iterations);
        const std::array<mcmc::PosteriorAccumulator*, 2> sinks{&scorer,
                                                               &residual};
        mcmc::run_gibbs(*model, gibbs, sinks);
        row.waic = scorer.waic();
        row.looic =
            core::compute_psis_loo_from_matrix(scorer.log_likelihood_matrix())
                .looic;
        row.posterior = residual.finalize();
      }
      rows.push_back(std::move(row));
    }
  }
  // Pseudo-BMA weights over the whole grid (computed in grid order, before
  // ranking reorders the rows) and the weighted mixture posterior.
  std::vector<core::AveragingCandidate> candidates;
  candidates.reserve(rows.size());
  for (const auto& row : rows) {
    candidates.push_back({row.prior + "/" + row.model, row.waic,
                          row.posterior});
  }
  const auto averaged = core::average_models(candidates);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    rows[r].weight = averaged.weights[r].weight;
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.waic.waic < b.waic.waic;
  });
  if (format == "json") {
    support::Json ranking = support::Json::Array{};
    for (const auto& row : rows) {
      support::Json entry = support::Json::Object{};
      entry.set("prior", row.prior);
      entry.set("model", row.model);
      entry.set("waic", row.waic.waic);
      entry.set("looic", row.looic);
      entry.set("residual_mean", row.posterior.summary.mean);
      entry.set("pseudo_bma_weight", row.weight);
      ranking.push_back(std::move(entry));
    }
    support::Json json = support::Json::Object{};
    json.set("ranking", std::move(ranking));
    support::Json mixture = support::Json::Object{};
    mixture.set("residual_mean", averaged.summary.mean);
    mixture.set("residual_sd", averaged.summary.sd);
    json.set("pseudo_bma", std::move(mixture));
    out << json.dump(2);
    return 0;
  }
  support::Table t("model ranking (by WAIC; smaller is better)");
  t.set_header({"rank", "prior", "model", "WAIC", "looic", "residual mean",
                "pBMA weight"});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    t.add_row({support::dec(r + 1), rows[r].prior, rows[r].model,
               support::format_double(rows[r].waic.waic, 3),
               support::format_double(rows[r].looic, 3),
               support::format_double(rows[r].posterior.summary.mean, 2),
               support::format_double(rows[r].weight, 3)});
  }
  out << t.render();
  out << "pseudo-BMA averaged residual: mean "
      << support::format_double(averaged.summary.mean, 2) << ", sd "
      << support::format_double(averaged.summary.sd, 2) << '\n';
  return 0;
}

int run_predict(const Args& args, std::ostream& out) {
  const auto data = load_dataset(args);
  const auto fit_days =
      static_cast<std::size_t>(args.get_int("fit-days", 0));
  SRM_EXPECTS(fit_days >= 1 && fit_days < data.days(),
              "--fit-days must be a strict prefix of the series");
  const auto prior = parse_prior(args);
  const auto model = parse_model(args, prior);
  const auto config = parse_config(args);
  auto gibbs = parse_gibbs(args);
  // The holdout scorer walks the raw chains itself.
  gibbs.keep_traces = true;
  reject_unused(args);

  const auto summary = core::fit_and_score_holdout(data, fit_days, prior,
                                                   model, config, gibbs);
  out << "fit on days 1.." << fit_days << ", scored on days "
      << (fit_days + 1) << ".." << data.days() << "\n";
  out << "log predictive score "
      << support::format_double(summary.log_score, 3) << '\n';
  out << "E[count on day " << (fit_days + 1) << "] "
      << support::format_double(summary.mean_next_count, 3) << '\n';
  out << "E[cumulative at day " << data.days() << "] "
      << support::format_double(summary.predicted_cumulative.back(), 1)
      << " (actual " << data.total() << ")\n";
  return 0;
}

int run_mle(const Args& args, std::ostream& out) {
  const auto data = load_dataset(args);
  reject_unused(args);
  out << "dataset: " << data.name() << " (" << data.total() << " bugs / "
      << data.days() << " days)\n";
  const auto fits = mle::fit_all_models(data);
  support::Table t("discrete profile MLE (sorted by AIC)");
  t.set_header({"model", "logL", "AIC", "BIC", "N-hat", "residual"});
  for (const auto& fit : fits) {
    const bool diverged = fit.diverged(data);
    t.add_row({core::to_string(fit.model),
               support::format_double(fit.log_likelihood, 3),
               support::format_double(fit.aic, 3),
               support::format_double(fit.bic, 3),
               diverged ? "unbounded" : support::dec(fit.initial_bugs),
               diverged ? "unbounded" : support::dec(fit.residual(data))});
  }
  out << t.render();
  return 0;
}

int run_nhpp(const Args& args, std::ostream& out) {
  const auto data = load_dataset(args);
  reject_unused(args);
  out << "dataset: " << data.name() << " (" << data.total() << " bugs / "
      << data.days() << " days)\n";
  const auto fits = nhpp::fit_all_nhpp_models(data);
  support::Table t("continuous NHPP MLE (sorted by AIC)");
  t.set_header({"model", "logL", "AIC", "a-hat", "residual", "R(1 day)"});
  for (const auto& fit : fits) {
    const double residual = fit.expected_residual(data);
    t.add_row({nhpp::to_string(fit.model),
               support::format_double(fit.log_likelihood, 3),
               support::format_double(fit.aic, 3),
               support::format_double(fit.a, 2),
               std::isinf(residual) ? "inf"
                                    : support::format_double(residual, 2),
               support::format_double(fit.reliability_after(data, 1.0), 4)});
  }
  out << t.render();
  return 0;
}

int run_simulate(const Args& args, std::ostream& out) {
  const auto bugs = args.get_int("bugs", 100);
  const auto days = static_cast<std::size_t>(args.get_int("days", 50));
  const auto kind = parse_model_name(args, "model0");
  const auto detector = core::make_detection_model(kind);

  std::vector<double> zeta;
  core::DetectionModelLimits limits;
  for (const auto& support : detector->parameter_supports(limits)) {
    SRM_EXPECTS(args.has(support.name),
                "simulate with " + core::to_string(kind) + " requires --" +
                    support.name);
    zeta.push_back(args.get_double(support.name, 0.0));
  }
  random::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const std::string out_path = args.get_string("out", "");
  reject_unused(args);

  const auto data = data::simulate_detection_process(
      bugs, days,
      [&](std::size_t day) { return detector->probability(day, zeta); }, rng,
      "simulated");
  out << "simulated " << data.total() << " of " << bugs << " bugs over "
      << days << " days (" << core::to_string(kind) << ")\n";
  support::CsvRows rows{{"day", "count"}};
  for (std::size_t day = 1; day <= days; ++day) {
    rows.push_back(
        {support::dec(day), support::dec(data.count_on_day(day))});
  }
  if (out_path.empty()) {
    std::ostringstream csv;
    support::write_csv(csv, rows);
    out << csv.str();
  } else {
    support::write_csv_file(out_path, rows);
    out << "written to " << out_path << '\n';
  }
  return 0;
}

int run_release(const Args& args, std::ostream& out) {
  const auto data = load_dataset(args);
  const auto prior = parse_prior(args);
  const auto kind = parse_model(args, prior);
  const auto config = parse_config(args);
  auto gibbs = parse_gibbs(args);
  // plan_release resamples from the stored run, so traces are required.
  gibbs.keep_traces = true;
  core::ReleaseCosts costs;
  costs.cost_per_testing_day = args.get_double("day-cost", 1.0);
  costs.cost_per_residual_bug = args.get_double("bug-cost", 50.0);
  const auto horizon =
      static_cast<std::size_t>(args.get_int("horizon", 60));
  reject_unused(args);

  const auto model = core::make_model(prior, kind, data, config, gibbs);
  const auto run = mcmc::run_gibbs(*model, gibbs);
  const auto posterior = core::summarize_residual_posterior(run);
  const auto [lo, hi] = posterior.credible_interval(0.95);
  out << "residual bugs today (day " << data.days() << "): mean "
      << support::format_double(posterior.summary.mean, 2) << ", 95% CI ["
      << lo << ", " << hi << "]\n";

  const auto plan = core::plan_release(*model, run, horizon, costs);
  support::Table t("release schedule");
  t.set_header({"day", "E[residual]", "E[cost]"});
  for (const auto& decision : plan.schedule) {
    t.add_row({support::dec(decision.day),
               support::format_double(decision.expected_residual, 2),
               support::format_double(decision.expected_cost, 2)});
  }
  out << t.render();
  out << "optimal release: day " << plan.best.day << " (expected cost "
      << support::format_double(plan.best.expected_cost, 2) << ")\n";
  return 0;
}

int run_sweep(const Args& args, std::ostream& out) {
  const std::string source = args.get_string("csv", "sys1");
  const auto data = load_dataset(args, "sys1");
  auto options = report::paper_sweep_options();
  if (source != "sys1") {
    // The paper's observation grid and eventual total are SYS1-specific;
    // for another dataset default to a single observation at the end of
    // the series (override with --obs-days / --total).
    options.observation_days = {data.days()};
    options.eventual_total = data.total();
  }
  if (args.has("smoke")) {
    // CI-scale settings: same grid shape, two observation points and a
    // short chain per cell.
    options.gibbs.burn_in = 50;
    options.gibbs.iterations = 200;
    if (source == "sys1") options.observation_days = {48, 146};
  }
  if (args.has("obs-days")) {
    options.observation_days = parse_day_list(args.require_string("obs-days"));
  }
  options.eventual_total = args.get_int("total", options.eventual_total);
  options.gibbs.chain_count = args.get_size("chains", options.gibbs.chain_count);
  options.gibbs.burn_in = args.get_size("burn-in", options.gibbs.burn_in);
  options.gibbs.iterations =
      args.get_size("iterations", options.gibbs.iterations);
  options.gibbs.thin = args.get_size("thin", options.gibbs.thin);
  options.gibbs.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(options.gibbs.seed)));
  if (args.has("keep-traces")) options.gibbs.keep_traces = true;
  if (args.has("vectorized")) options.gibbs.vectorized = true;
  if (args.has("chain-lanes")) options.gibbs.chain_lanes = true;
  options.base_config.lambda_max =
      args.get_double("lambda-max", options.base_config.lambda_max);
  options.base_config.alpha_max =
      args.get_double("alpha-max", options.base_config.alpha_max);
  options.base_config.limits.theta_max =
      args.get_double("theta-max", options.base_config.limits.theta_max);
  if (args.has("jeffreys")) options.base_config.jeffreys_lambda0 = true;

  const std::string out_dir = args.get_string("out", "");
  const bool resume = args.has("resume");
  const auto max_cells = args.get_size("max-cells", 0);
  const std::string format = args.get_string("format", "table");
  SRM_EXPECTS(format == "table" || format == "json" || format == "csv",
              "unknown --format '" + format + "' (use table|json|csv)");
  SRM_EXPECTS(!out_dir.empty() || (!resume && max_cells == 0),
              "--resume and --max-cells require --out DIR");
  reject_unused(args);

  std::optional<artifact::ArtifactStore> store;
  if (!out_dir.empty()) {
    store.emplace(out_dir, data, options, resume);
    store->set_max_fresh_cells(max_cells);
  }
  report::SweepExecution exec;
  const auto sweep =
      report::run_sweep(data, options, store ? &*store : nullptr, &exec);
  if (store) store->record_run(exec);
  if (!exec.complete()) {
    out << "partial sweep: " << (exec.cells_computed + exec.cells_reused)
        << "/" << exec.cells_total << " cells done (" << exec.cells_computed
        << " sampled this run, " << exec.cells_reused << " reused, "
        << exec.cells_skipped
        << " skipped); rerun with --resume to continue\n";
    return 3;
  }
  if (store) store->finalize(sweep);

  if (format == "json") {
    out << artifact::to_json(sweep).dump(2);
  } else if (format == "csv") {
    support::write_csv(out, report::sweep_csv_rows(sweep));
  } else {
    out << report::render_waic_table(sweep);
    out << report::render_posterior_table(sweep,
                                          report::PosteriorStatistic::kMean);
    out << report::render_posterior_table(sweep,
                                          report::PosteriorStatistic::kMedian);
    out << report::render_posterior_table(sweep,
                                          report::PosteriorStatistic::kMode);
    out << report::render_posterior_table(sweep,
                                          report::PosteriorStatistic::kStdDev);
  }
  return 0;
}

int run_families(const Args& args, std::ostream& out) {
  const std::string format = args.get_string("format", "table");
  SRM_EXPECTS(format == "table" || format == "markdown",
              "unknown --format '" + format + "' (use table|markdown)");
  reject_unused(args);
  if (format == "markdown") {
    // The exact table embedded in README.md; a docs test pins the README
    // copy to this output so the two can never drift.
    out << core::render_family_table_markdown();
    return 0;
  }
  support::Table t("registered model families");
  t.set_header({"id", "family", "models", "hyper-parameters", "forks"});
  for (const auto& entry : core::model_families().families()) {
    std::string models;
    for (const auto kind : entry.accepted_models) {
      if (!models.empty()) models += ' ';
      models += core::to_string(kind);
    }
    std::string hyper;
    for (const auto& name : entry.hyper_parameter_names) {
      if (!hyper.empty()) hyper += ' ';
      hyper += name;
    }
    std::string forks;
    if (entry.supports_vectorized) forks += "vectorized ";
    if (entry.supports_chain_lanes) forks += "chain-lanes";
    if (forks.empty()) forks = "scalar only";
    t.add_row({entry.id, entry.display_name, models, hyper, forks});
  }
  out << t.render();
  return 0;
}

std::string usage() {
  // The family list and per-family summaries come from the registry, so a
  // newly registered family shows up here without touching this text.
  std::string families_help;
  for (const auto& entry : core::model_families().families()) {
    families_help += "  " + entry.id;
    families_help.append(entry.id.size() < 12 ? 12 - entry.id.size() : 1, ' ');
    families_help += entry.summary + "\n";
  }
  return
      "usage: srm_cli <command> [--flags]\n"
      "commands:\n"
      "  fit       fit one Bayesian SRM and print the residual-bug posterior\n"
      "  select    rank every family's prior/model grid by WAIC and\n"
      "            PSIS-LOO, with pseudo-BMA weights and the averaged\n"
      "            residual posterior\n"
      "  predict   fit on a prefix and score the held-out future counts\n"
      "  mle       discrete profile maximum likelihood baseline (AIC/BIC)\n"
      "  nhpp      continuous-time NHPP maximum likelihood baseline\n"
      "  simulate  generate bug-count data from a detection model\n"
      "  release   cost-optimal release day from the residual posterior\n"
      "  families  list the registered model families (--format markdown\n"
      "            emits the README model table)\n"
      "  sweep     full prior x model x observation-day grid (paper tables);\n"
      "            --out DIR persists spec-hashed artifacts, --resume skips\n"
      "            completed cells, --format table|json|csv, --smoke for a\n"
      "            CI-scale grid, --max-cells N caps fresh cells (exit 3\n"
      "            marks a partial run), --obs-days D1,D2,..., --total N\n"
      "  serve     long-running estimation service: one JSON request per\n"
      "            line on stdin (or --socket PATH), cached posteriors\n"
      "            (--store DIR, --cache-size N), fit/predict/release/\n"
      "            select/stats/shutdown ops (see src/serve/protocol.hpp)\n"
      "model families (--prior " + core::family_ids_joined() + "):\n" +
      families_help +
      "common flags: --csv FILE|sys1|ntds, --days N,\n"
      "  --model " + model_names_joined() +
      ", --chains, --burn-in, --iterations, --seed,\n"
      "  --thin N        keep every N-th retained scan (default 1)\n"
      "  --keep-traces   store full chains instead of streaming accumulators\n"
      "                  (identical output; only memory use differs)\n"
      "  --vectorized    SIMD detection kernels for model2/3/4 (faster, but\n"
      "                  draws differ from scalar at the ULP level, so\n"
      "                  artifact/serve hashes change with this flag)\n"
      "  --chain-lanes   run up to 4 chains packed in SIMD lanes (every\n"
      "                  model; per-chain draws identical for any lane or\n"
      "                  thread count, but a fork from the scalar path, so\n"
      "                  hashes change with this flag too)\n"
      "  --lambda-max, --alpha-max, --theta-max, --jeffreys,\n"
      "  --threads N  worker threads for chains/sweeps/scoring\n"
      "               (0 = all hardware threads; SRM_THREADS env also works;\n"
      "               results are identical for every N)\n";
}

int dispatch(const std::string& command,
             const std::vector<std::string>& flags, std::ostream& out,
             std::ostream& err) {
  try {
    const auto args = Args::parse(flags);
    configure_runtime(args);
    if (command == "fit") return run_fit(args, out);
    if (command == "select") return run_select(args, out);
    if (command == "predict") return run_predict(args, out);
    if (command == "mle") return run_mle(args, out);
    if (command == "nhpp") return run_nhpp(args, out);
    if (command == "simulate") return run_simulate(args, out);
    if (command == "release") return run_release(args, out);
    if (command == "families") return run_families(args, out);
    if (command == "sweep") return run_sweep(args, out);
    err << "unknown command '" << command << "'\n" << usage();
    return 1;
  } catch (const Error& e) {
    err << "error: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace srm::cli
