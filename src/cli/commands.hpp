// The srm_cli subcommands, separated from main() so they are directly
// unit-testable (each writes to a caller-provided stream and returns a
// process exit code).
//
//   srm_cli fit      --csv FILE [--prior poisson|negbin] [--model model0..4]
//                    [--days N] [--chains C] [--burn-in B] [--iterations I]
//                    [--seed S] [--lambda-max X] [--alpha-max X]
//                    [--theta-max X]
//   srm_cli select   --csv FILE [--days N] [mcmc flags]   WAIC+LOO ranking
//   srm_cli predict  --csv FILE --fit-days M [...]        holdout scoring
//   srm_cli mle      --csv FILE [--days N]                discrete MLE + AIC
//   srm_cli nhpp     --csv FILE [--days N]                continuous NHPP MLE
//   srm_cli simulate --bugs N --days K --model modelX --mu .. [--theta ..]
//                    [--omega ..] [--gamma ..] [--seed S] [--out FILE]
//   srm_cli release  --csv FILE [--day-cost X] [--bug-cost X]
//                    [--horizon H] [...]                 optimal ship day
//
// `--csv sys1` and `--csv ntds` select the embedded datasets.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cli/args.hpp"

namespace srm::cli {

int run_fit(const Args& args, std::ostream& out);
int run_select(const Args& args, std::ostream& out);
int run_predict(const Args& args, std::ostream& out);
int run_mle(const Args& args, std::ostream& out);
int run_nhpp(const Args& args, std::ostream& out);
int run_simulate(const Args& args, std::ostream& out);
int run_release(const Args& args, std::ostream& out);
/// The full evaluation grid with optional persistent artifacts: --out DIR
/// writes a spec-hashed artifact directory (src/artifact/), --resume skips
/// cells already on disk, --max-cells N caps freshly sampled cells and a
/// partial run exits with code 3 instead of printing tables.
int run_sweep(const Args& args, std::ostream& out);

/// Dispatches `command` and catches library errors into exit code 2.
int dispatch(const std::string& command,
             const std::vector<std::string>& flags, std::ostream& out,
             std::ostream& err);

/// The usage text printed for unknown/missing commands.
std::string usage();

}  // namespace srm::cli
