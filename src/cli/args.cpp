#include "cli/args.hpp"

#include <charconv>

#include "support/error.hpp"
#include "support/format.hpp"

namespace srm::cli {

Args Args::parse(const std::vector<std::string>& tokens) {
  Args args;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    SRM_EXPECTS(token.rfind("--", 0) == 0,
                "expected a --flag, got '" + token + "'");
    const std::string name = token.substr(2);
    SRM_EXPECTS(!name.empty(), "empty flag name");
    SRM_EXPECTS(!args.values_.contains(name),
                "duplicate flag --" + name);
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      args.values_[name] = tokens[i + 1];
      ++i;
    } else {
      args.values_[name] = "";  // boolean switch
    }
    args.consumed_[name] = false;
  }
  return args;
}

bool Args::has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_[name] = true;
  return true;
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  return it->second;
}

std::string Args::require_string(const std::string& name) const {
  const auto it = values_.find(name);
  SRM_EXPECTS(it != values_.end() && !it->second.empty(),
              "missing required flag --" + name);
  consumed_[name] = true;
  return it->second;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  double value = 0.0;
  const auto& text = it->second;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  SRM_EXPECTS(ec == std::errc{} && ptr == text.data() + text.size(),
              "flag --" + name + " expects a number, got '" + text + "'");
  return value;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  std::int64_t value = 0;
  const auto& text = it->second;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  SRM_EXPECTS(ec == std::errc{} && ptr == text.data() + text.size(),
              "flag --" + name + " expects an integer, got '" + text + "'");
  return value;
}

std::size_t Args::get_size(const std::string& name,
                           std::size_t fallback) const {
  const std::int64_t value =
      get_int(name, static_cast<std::int64_t>(fallback));
  SRM_EXPECTS(value >= 0,
              "flag --" + name + " expects a non-negative integer, got " +
                  support::dec(value));
  return static_cast<std::size_t>(value);
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : values_) {
    if (!consumed_.at(name)) names.push_back(name);
  }
  return names;
}

}  // namespace srm::cli
