// The full evaluation sweep of the paper's Section 5: 2 priors x 5
// detection models x 9 observation points, run once and projected into all
// five tables and both box-plot figures by src/report/tables.hpp. The grid
// itself comes from the model-family registry: each swept family
// contributes its selection_models columns, so registering a new family is
// all it takes to make it sweepable.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "data/bug_count_data.hpp"

namespace srm::report {

struct SweepOptions {
  std::vector<std::size_t> observation_days;
  std::int64_t eventual_total = 0;
  mcmc::GibbsOptions gibbs{};
  /// Baseline hyperprior configuration (upper limits); per-cell overrides
  /// can be installed with `set_override`.
  core::HyperPriorConfig base_config{};
  /// Families in the sweep grid, in the order their cells are laid out.
  /// Defaults to the registry's reproduction families (the paper's grid);
  /// serialized omit-if-default so every pre-existing sweep identity keeps
  /// its exact bytes.
  std::vector<core::PriorKind> families = core::reproduction_family_kinds();

  /// One per-cell hyperprior override.
  struct Override {
    core::PriorKind prior;
    core::DetectionModelKind model;
    core::HyperPriorConfig config;
  };

  void set_override(core::PriorKind prior, core::DetectionModelKind model,
                    core::HyperPriorConfig config);
  [[nodiscard]] core::HyperPriorConfig config_for(
      core::PriorKind prior, core::DetectionModelKind model) const;
  /// Installed overrides, in insertion order (for canonical serialization).
  [[nodiscard]] const std::vector<Override>& overrides() const {
    return overrides_;
  }

 private:
  std::vector<Override> overrides_;
};

/// One (prior, detection model) cell of the sweep.
struct SweepCell {
  core::PriorKind prior;
  core::DetectionModelKind model;
  core::HyperPriorConfig config;
  std::vector<core::ObservationResult> results;  ///< one per observation day
};

struct SweepResult {
  std::vector<std::size_t> observation_days;
  std::vector<SweepCell> cells;

  [[nodiscard]] const SweepCell& cell(core::PriorKind prior,
                                      core::DetectionModelKind model) const;
};

/// Where each cell of a store-backed sweep came from. cells_skipped > 0
/// marks a partial run (a budgeted or interrupted sweep): the skipped
/// result slots are left default-constructed (observation_day == 0) and
/// the SweepResult must not be projected into tables or a final artifact.
struct SweepExecution {
  std::size_t cells_total = 0;
  std::size_t cells_computed = 0;  ///< freshly sampled this run
  std::size_t cells_reused = 0;    ///< replayed from the store
  std::size_t cells_skipped = 0;   ///< left unfilled (budget exhausted)

  [[nodiscard]] bool complete() const { return cells_skipped == 0; }
};

/// Runs every (prior, model, observation day) combination. The cells are
/// independent posteriors and are scheduled on the shared srm::runtime
/// pool; the output is bit-identical for any worker count (size the pool
/// with --threads / SRM_THREADS / ThreadPool::set_global_thread_count).
///
/// With a store, every cell is planned through it (serially, in layout
/// order) before anything runs: kReuse cells are filled from the store and
/// never sampled, kSkip cells are left unfilled, and only kCompute cells
/// are scheduled on the pool (each reports back via on_computed from its
/// worker thread). Reused results splice into the same pre-sized slots the
/// sampler would have written, so a resumed sweep assembles a SweepResult
/// bit-identical to an uninterrupted one.
SweepResult run_sweep(const data::BugCountData& base,
                      const SweepOptions& options,
                      core::ObservationStore* store = nullptr,
                      SweepExecution* execution = nullptr);

/// The (prior, detection model) cell layout of a sweep over `families`:
/// each family's selection grid, families in the given order. run_sweep and
/// the artifact store's directory layout both derive from this single
/// function, so the two can never disagree on cell order.
std::vector<std::pair<core::PriorKind, core::DetectionModelKind>> sweep_grid(
    const std::vector<core::PriorKind>& families);

/// The paper's SYS1 experimental setup with laptop-scale MCMC defaults:
/// observation days {48,67,86,96,106,116,126,136,146}, eventual total 136,
/// 2 chains x (500 burn-in + 2500 retained).
SweepOptions paper_sweep_options();

}  // namespace srm::report
