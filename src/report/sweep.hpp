// The full evaluation sweep of the paper's Section 5: 2 priors x 5
// detection models x 9 observation points, run once and projected into all
// five tables and both box-plot figures by src/report/tables.hpp.
#pragma once

#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "data/bug_count_data.hpp"

namespace srm::report {

struct SweepOptions {
  std::vector<std::size_t> observation_days;
  std::int64_t eventual_total = 0;
  mcmc::GibbsOptions gibbs{};
  /// Baseline hyperprior configuration (upper limits); per-cell overrides
  /// can be installed with `set_override`.
  core::HyperPriorConfig base_config{};

  void set_override(core::PriorKind prior, core::DetectionModelKind model,
                    core::HyperPriorConfig config);
  [[nodiscard]] core::HyperPriorConfig config_for(
      core::PriorKind prior, core::DetectionModelKind model) const;

 private:
  struct Override {
    core::PriorKind prior;
    core::DetectionModelKind model;
    core::HyperPriorConfig config;
  };
  std::vector<Override> overrides_;
};

/// One (prior, detection model) cell of the sweep.
struct SweepCell {
  core::PriorKind prior;
  core::DetectionModelKind model;
  core::HyperPriorConfig config;
  std::vector<core::ObservationResult> results;  ///< one per observation day
};

struct SweepResult {
  std::vector<std::size_t> observation_days;
  std::vector<SweepCell> cells;

  [[nodiscard]] const SweepCell& cell(core::PriorKind prior,
                                      core::DetectionModelKind model) const;
};

/// Runs every (prior, model, observation day) combination. The cells are
/// independent posteriors and are scheduled on the shared srm::runtime
/// pool; the output is bit-identical for any worker count (size the pool
/// with --threads / SRM_THREADS / ThreadPool::set_global_thread_count).
SweepResult run_sweep(const data::BugCountData& base,
                      const SweepOptions& options);

/// The paper's SYS1 experimental setup with laptop-scale MCMC defaults:
/// observation days {48,67,86,96,106,116,126,136,146}, eventual total 136,
/// 2 chains x (500 burn-in + 2500 retained).
SweepOptions paper_sweep_options();

}  // namespace srm::report
