#include "report/sweep.hpp"

#include "core/fit.hpp"
#include "data/datasets.hpp"
#include "runtime/task_group.hpp"
#include "support/error.hpp"

namespace srm::report {

void SweepOptions::set_override(core::PriorKind prior,
                                core::DetectionModelKind model,
                                core::HyperPriorConfig config) {
  for (auto& o : overrides_) {
    if (o.prior == prior && o.model == model) {
      o.config = config;
      return;
    }
  }
  overrides_.push_back({prior, model, config});
}

core::HyperPriorConfig SweepOptions::config_for(
    core::PriorKind prior, core::DetectionModelKind model) const {
  for (const auto& o : overrides_) {
    if (o.prior == prior && o.model == model) return o.config;
  }
  return base_config;
}

const SweepCell& SweepResult::cell(core::PriorKind prior,
                                   core::DetectionModelKind model) const {
  for (const auto& c : cells) {
    if (c.prior == prior && c.model == model) return c;
  }
  throw InvalidArgument("sweep cell not found for " + core::to_string(prior) +
                        "/" + core::to_string(model));
}

SweepResult run_sweep(const data::BugCountData& base,
                      const SweepOptions& options,
                      core::ObservationStore* store,
                      SweepExecution* execution) {
  SRM_EXPECTS(!options.observation_days.empty(),
              "sweep requires observation days");
  SweepResult sweep;
  sweep.observation_days = options.observation_days;

  // Lay out every cell (and its per-day result slots) up front, then
  // schedule each independent (prior, model, observation day) posterior as
  // one task on the shared runtime pool. Each task writes only its own
  // pre-sized slot and the cell order is fixed before anything runs, so the
  // result is bit-identical to the serial sweep for any worker count.
  std::vector<core::ExperimentSpec> specs;
  for (const auto& [prior, model] : sweep_grid(options.families)) {
    SweepCell cell;
    cell.prior = prior;
    cell.model = model;
    cell.config = options.config_for(prior, model);
    cell.results.resize(options.observation_days.size());
    sweep.cells.push_back(std::move(cell));

    core::ExperimentSpec spec;
    spec.prior = prior;
    spec.model = model;
    spec.config = sweep.cells.back().config;
    spec.gibbs = options.gibbs;
    spec.observation_days = options.observation_days;
    spec.eventual_total = options.eventual_total;
    specs.push_back(std::move(spec));
  }

  SweepExecution exec;
  exec.cells_total = sweep.cells.size() * options.observation_days.size();

  // Plan every cell serially (store implementations need not lock here),
  // splicing reused results into their slots, then fan the remaining
  // kCompute cells out on the pool. The plan order is the fixed grid
  // layout order, so budgets ("first N fresh cells") are deterministic for
  // any worker count.
  struct Pending {
    std::size_t ci;
    std::size_t di;
  };
  std::vector<Pending> pending;
  for (std::size_t ci = 0; ci < sweep.cells.size(); ++ci) {
    for (std::size_t di = 0; di < options.observation_days.size(); ++di) {
      if (store == nullptr) {
        pending.push_back({ci, di});
        ++exec.cells_computed;
        continue;
      }
      core::ObservationResult stored;
      switch (store->plan(specs[ci], options.observation_days[di], stored)) {
        case core::ObservationStore::Plan::kReuse:
          sweep.cells[ci].results[di] = std::move(stored);
          ++exec.cells_reused;
          break;
        case core::ObservationStore::Plan::kSkip:
          ++exec.cells_skipped;
          break;
        case core::ObservationStore::Plan::kCompute:
          pending.push_back({ci, di});
          ++exec.cells_computed;
          break;
      }
    }
  }

  runtime::TaskGroup group;
  for (const auto& [ci, di] : pending) {
    group.run([&base, &sweep, &specs, &options, store, ci, di] {
      sweep.cells[ci].results[di] = core::fit_cell(
          base,
          core::single_cell_request(specs[ci], options.observation_days[di]));
      if (store != nullptr) {
        // Worker-thread callback; the store contract requires this to be
        // thread-safe.
        store->on_computed(specs[ci], options.observation_days[di],
                           sweep.cells[ci].results[di]);
      }
    });
  }
  group.wait();
  if (execution != nullptr) *execution = exec;
  return sweep;
}

std::vector<std::pair<core::PriorKind, core::DetectionModelKind>> sweep_grid(
    const std::vector<core::PriorKind>& families) {
  std::vector<std::pair<core::PriorKind, core::DetectionModelKind>> grid;
  for (const auto prior : families) {
    for (const auto model : core::family(prior).selection_models) {
      grid.emplace_back(prior, model);
    }
  }
  return grid;
}

SweepOptions paper_sweep_options() {
  SweepOptions options;
  options.observation_days.assign(std::begin(data::kSys1ObservationPoints),
                                  std::end(data::kSys1ObservationPoints));
  options.eventual_total = data::kSys1TotalBugs;
  options.gibbs.chain_count = 2;
  options.gibbs.burn_in = 500;
  options.gibbs.iterations = 2500;
  options.gibbs.seed = 20240624;
  // The sweep only consumes streamed summaries, so cells run in O(1)
  // memory; scoring and diagnostics are bit-identical either way.
  options.gibbs.keep_traces = false;
  // Upper limits in the neighbourhood the paper's WAIC tuning lands on;
  // bench/ablation_hyperparams sweeps them explicitly.
  options.base_config.lambda_max = 2000.0;
  options.base_config.alpha_max = 100.0;
  options.base_config.limits.theta_max = 10.0;
  options.base_config.limits.gamma_bound = 10.0;
  return options;
}

}  // namespace srm::report
