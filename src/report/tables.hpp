// Projections of a SweepResult into the paper's tables and figures:
//   Table I    — WAIC per (prior, model, observation day)
//   Table II   — posterior means (+ deviation from the actual residual)
//   Table III  — posterior medians (+ deviation)
//   Table IV   — posterior modes (+ deviation)
//   Table V    — posterior standard deviations
//   Figs 2-3   — ASCII box plots of the residual posterior per day
// plus the dataset listing of Fig. 1. Each renderer returns a printable
// string; the bench binaries just stream it to stdout.
#pragma once

#include <string>

#include "data/bug_count_data.hpp"
#include "report/sweep.hpp"
#include "support/csv.hpp"

namespace srm::report {

/// Which posterior statistic a table shows.
enum class PosteriorStatistic { kMean, kMedian, kMode, kStdDev };

/// Fig 1: the dataset as "day, count, cumulative" rows plus an ASCII
/// cumulative curve.
std::string render_dataset_figure(const data::BugCountData& data);

/// Table I (one sub-table per prior).
std::string render_waic_table(const SweepResult& sweep);

/// Tables II-V. Deviation columns are shown for mean/median/mode (matching
/// the paper, which omits them for the standard deviation).
std::string render_posterior_table(const SweepResult& sweep,
                                   PosteriorStatistic statistic);

/// Figs 2-3: box plots for one prior across all observation days and
/// detection models.
std::string render_boxplot_figure(const SweepResult& sweep,
                                  core::PriorKind prior);

/// Convergence report: PSRF / Geweke / ESS for every parameter of every
/// cell at one observation day (Section 4.2's diagnostics).
std::string render_diagnostics_table(const SweepResult& sweep,
                                     std::size_t observation_day);

/// Flat machine-readable projection of the whole sweep: a header row, then
/// one row per (prior, model, observation day) cell carrying WAIC, the
/// four tabulated posterior statistics, and the actual residual. Doubles
/// are written in shortest-exact form (support::Json::format_double), so
/// the CSV loses nothing relative to the JSON artifact.
support::CsvRows sweep_csv_rows(const SweepResult& sweep);

}  // namespace srm::report
