#include "report/tables.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/format.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace srm::report {

namespace {

using support::Table;

std::string day_label(std::size_t day) {
  return support::dec(day) + "days";
}

std::vector<std::string> model_header(const core::ModelFamily& family) {
  std::vector<std::string> header{""};
  for (const auto kind : family.selection_models) {
    header.push_back(core::to_string(kind));
  }
  return header;
}

/// Distinct priors of the sweep, in cell layout order — the sub-table
/// order of every rendered table.
std::vector<core::PriorKind> sweep_priors(const SweepResult& sweep) {
  std::vector<core::PriorKind> priors;
  for (const auto& cell : sweep.cells) {
    if (std::find(priors.begin(), priors.end(), cell.prior) == priors.end()) {
      priors.push_back(cell.prior);
    }
  }
  return priors;
}

double statistic_value(const core::ObservationResult& result,
                       PosteriorStatistic statistic) {
  switch (statistic) {
    case PosteriorStatistic::kMean:
      return result.posterior.summary.mean;
    case PosteriorStatistic::kMedian:
      return static_cast<double>(result.posterior.summary.median);
    case PosteriorStatistic::kMode:
      return static_cast<double>(result.posterior.summary.mode);
    case PosteriorStatistic::kStdDev:
      return result.posterior.summary.sd;
  }
  throw InvalidArgument("unknown PosteriorStatistic");
}

std::string statistic_title(PosteriorStatistic statistic) {
  switch (statistic) {
    case PosteriorStatistic::kMean:
      return "Comparison of mean values of the posterior distributions.";
    case PosteriorStatistic::kMedian:
      return "Comparison of medians of the posterior distributions.";
    case PosteriorStatistic::kMode:
      return "Comparison of modes of the posterior distributions.";
    case PosteriorStatistic::kStdDev:
      return "Comparison of standard deviations of the posterior "
             "distributions.";
  }
  throw InvalidArgument("unknown PosteriorStatistic");
}

int statistic_digits(PosteriorStatistic statistic) {
  return (statistic == PosteriorStatistic::kMedian ||
          statistic == PosteriorStatistic::kMode)
             ? 0
             : 3;
}

}  // namespace

std::string render_dataset_figure(const data::BugCountData& data) {
  std::ostringstream out;
  out << "Dataset: " << data.name() << " — " << data.total()
      << " bugs over " << data.days() << " testing days\n\n";

  // ASCII cumulative curve, one row per 4 days, 60 columns wide.
  const double scale =
      60.0 / static_cast<double>(std::max<std::int64_t>(data.total(), 1));
  for (std::size_t day = 4; day <= data.days(); day += 4) {
    const std::int64_t s = data.cumulative_through(day);
    const auto bar = static_cast<std::size_t>(
        std::lround(static_cast<double>(s) * scale));
    out << "day " << (day < 10 ? "  " : day < 100 ? " " : "") << day << " |"
        << std::string(bar, '#') << " " << s << '\n';
  }

  out << '\n';
  Table t("Daily bug counts");
  t.set_header({"day", "count", "cumulative"});
  for (std::size_t day = 1; day <= data.days(); ++day) {
    t.add_row({support::dec(day), support::dec(data.count_on_day(day)),
               support::dec(data.cumulative_through(day))});
  }
  out << t.render();
  return out.str();
}

std::string render_waic_table(const SweepResult& sweep) {
  std::ostringstream out;
  out << "TABLE I: Comparison of WAIC.\n\n";
  for (const auto prior : sweep_priors(sweep)) {
    const auto& family = core::family(prior);
    Table t(family.table_title);
    t.set_header(model_header(family));
    for (std::size_t d = 0; d < sweep.observation_days.size(); ++d) {
      std::vector<std::string> row{day_label(sweep.observation_days[d])};
      for (const auto kind : family.selection_models) {
        const auto& cell = sweep.cell(prior, kind);
        row.push_back(support::format_double(cell.results[d].waic.waic, 3));
      }
      t.add_row(std::move(row));
    }
    out << t.render() << '\n';
  }
  return out.str();
}

std::string render_posterior_table(const SweepResult& sweep,
                                   PosteriorStatistic statistic) {
  const bool with_deviation = statistic != PosteriorStatistic::kStdDev;
  const int digits = statistic_digits(statistic);
  std::ostringstream out;
  out << statistic_title(statistic) << "\n\n";
  for (const auto prior : sweep_priors(sweep)) {
    const auto& family = core::family(prior);
    Table t(family.table_title);
    t.set_header(model_header(family));
    for (std::size_t d = 0; d < sweep.observation_days.size(); ++d) {
      std::vector<std::string> row{day_label(sweep.observation_days[d])};
      for (const auto kind : family.selection_models) {
        const auto& result = sweep.cell(prior, kind).results[d];
        const double value = statistic_value(result, statistic);
        std::string cell = support::format_double(value, digits);
        if (with_deviation) {
          const double deviation =
              value - static_cast<double>(result.actual_residual);
          // Separate appends: `+= " " + f()` trips gcc 12's -Wrestrict
          // false positive (GCC PR105651) at -O2 and above.
          cell += ' ';
          cell += support::format_deviation(deviation, digits);
        }
        row.push_back(std::move(cell));
      }
      t.add_row(std::move(row));
    }
    out << t.render() << '\n';
  }
  return out.str();
}

std::string render_boxplot_figure(const SweepResult& sweep,
                                  core::PriorKind prior) {
  std::ostringstream out;
  out << "Box plots of posterior distributions of the residual bug count ("
      << core::to_string(prior) << " prior)\n\n";
  for (std::size_t d = 0; d < sweep.observation_days.size(); ++d) {
    out << "-- observation point: " << sweep.observation_days[d]
        << " days --\n";
    std::vector<support::BoxStats> boxes;
    for (const auto kind : core::family(prior).selection_models) {
      const auto& result = sweep.cell(prior, kind).results[d];
      support::BoxStats box;
      box.label = core::to_string(kind);
      box.whisker_low = result.posterior.box.whisker_low;
      box.q1 = result.posterior.box.q1;
      box.median = result.posterior.box.median;
      box.q3 = result.posterior.box.q3;
      box.whisker_high = result.posterior.box.whisker_high;
      boxes.push_back(std::move(box));
    }
    out << support::render_box_plots(boxes, 64) << '\n';
  }
  return out.str();
}

std::string render_diagnostics_table(const SweepResult& sweep,
                                     std::size_t observation_day) {
  std::size_t day_index = sweep.observation_days.size();
  for (std::size_t d = 0; d < sweep.observation_days.size(); ++d) {
    if (sweep.observation_days[d] == observation_day) day_index = d;
  }
  SRM_EXPECTS(day_index < sweep.observation_days.size(),
              "observation day not part of the sweep");

  std::ostringstream out;
  out << "Convergence diagnostics at " << observation_day
      << " days (PSRF < 1.1 and |Geweke Z| < 1.96 indicate convergence)\n\n";
  Table t;
  t.set_header({"prior", "model", "parameter", "mean", "PSRF", "Geweke Z",
                "ESS", "ok"});
  for (const auto& cell : sweep.cells) {
    for (const auto& diag : cell.results[day_index].diagnostics) {
      const bool ok = diag.psrf < 1.1 && std::abs(diag.geweke_z) < 1.96;
      t.add_row({core::to_string(cell.prior), core::to_string(cell.model),
                 diag.name, support::format_double(diag.posterior_mean, 3),
                 support::format_double(diag.psrf, 3),
                 support::format_double(diag.geweke_z, 3),
                 support::format_double(diag.ess, 1), ok ? "yes" : "NO"});
    }
  }
  out << t.render();
  return out.str();
}

support::CsvRows sweep_csv_rows(const SweepResult& sweep) {
  support::CsvRows rows;
  rows.push_back({"prior", "model", "observation_day", "detected_so_far",
                  "actual_residual", "waic", "posterior_mean",
                  "posterior_median", "posterior_mode", "posterior_sd"});
  for (const auto& cell : sweep.cells) {
    for (std::size_t d = 0; d < sweep.observation_days.size(); ++d) {
      const auto& result = cell.results[d];
      const auto& s = result.posterior.summary;
      rows.push_back({core::to_string(cell.prior), core::to_string(cell.model),
                      support::dec(sweep.observation_days[d]),
                      support::dec(result.detected_so_far),
                      support::dec(result.actual_residual),
                      support::Json::format_double(result.waic.waic),
                      support::Json::format_double(s.mean),
                      support::dec(s.median), support::dec(s.mode),
                      support::Json::format_double(s.sd)});
    }
  }
  return rows;
}

}  // namespace srm::report
