// Grouped-data maximum likelihood for continuous-time NHPP SRMs.
//
// With counts x_i on unit intervals (i-1, i], the log-likelihood is
//   sum_i [ x_i log(DeltaLambda_i) - DeltaLambda_i - log x_i! ],
// which for finite-failure models Lambda = a F(t) profiles in closed form:
// a-hat(phi) = s_k / F(k; phi). The fit is therefore an outer Nelder-Mead
// over the growth parameters with an exact inner profile step, mirroring
// the discrete MLE baseline in src/mle/.
//
// Also provides an NHPP process simulator (per-interval Poisson draws) for
// calibration tests.
#pragma once

#include <vector>

#include "data/bug_count_data.hpp"
#include "nhpp/mean_value.hpp"
#include "random/rng.hpp"

namespace srm::nhpp {

struct NhppFit {
  NhppModelKind model;
  double a = 0.0;                ///< scale (expected total bug content)
  std::vector<double> phi;       ///< growth parameters
  double log_likelihood = 0.0;
  double aic = 0.0;
  double bic = 0.0;
  bool converged = false;

  /// True when the scale estimate ran off along the b -> 0, a -> infinity
  /// ridge (the mean value function degenerating to a straight line) — the
  /// finite-failure analogue of "no finite MLE". Read a-hat as unbounded.
  [[nodiscard]] bool diverged(const data::BugCountData& data) const {
    return a > 1000.0 * static_cast<double>(data.total() + 1);
  }

  /// Expected residual bug content after day k: a - Lambda(k). For the
  /// infinite-failure Musa-Okumoto model this is +infinity conceptually;
  /// we report the expected count in the next `horizon` days instead via
  /// expected_future_bugs.
  [[nodiscard]] double expected_residual(const data::BugCountData& data) const;

  /// Expected number of bugs found in (k, k + horizon].
  [[nodiscard]] double expected_future_bugs(const data::BugCountData& data,
                                            double horizon) const;

  /// Software reliability over the next `mission` days after day k.
  [[nodiscard]] double reliability_after(const data::BugCountData& data,
                                         double mission) const;
};

/// Poisson log-likelihood of grouped counts under (a, phi).
double nhpp_log_likelihood(const data::BugCountData& data,
                           const MeanValueFunction& mvf, double a,
                           std::span<const double> phi);

/// Profile MLE of the scale a for fixed growth parameters:
/// a-hat = s_k / F(k; phi) (valid for finite- and infinite-failure models;
/// for the latter F is the unnormalized Lambda at a = 1).
double profile_scale(const data::BugCountData& data,
                     const MeanValueFunction& mvf,
                     std::span<const double> phi);

/// Fits one NHPP model by profile maximum likelihood.
NhppFit fit_nhpp(const data::BugCountData& data, NhppModelKind kind);

/// Fits all four models, sorted by AIC (best first).
std::vector<NhppFit> fit_all_nhpp_models(const data::BugCountData& data);

/// Simulates grouped counts from an NHPP: x_i ~ Poisson(DeltaLambda_i).
data::BugCountData simulate_nhpp(const MeanValueFunction& mvf, double a,
                                 std::span<const double> phi,
                                 std::size_t days, random::Rng& rng,
                                 const std::string& name = "nhpp-sim");

}  // namespace srm::nhpp
