#include "nhpp/nhpp_fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mle/optimize.hpp"
#include "random/samplers.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace srm::nhpp {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double NhppFit::expected_residual(const data::BugCountData& data) const {
  const auto mvf = make_mean_value_function(model);
  if (!mvf->is_finite_failure()) {
    return std::numeric_limits<double>::infinity();
  }
  return a - mvf->mean_value(static_cast<double>(data.days()), a, phi);
}

double NhppFit::expected_future_bugs(const data::BugCountData& data,
                                     double horizon) const {
  const auto mvf = make_mean_value_function(model);
  const double k = static_cast<double>(data.days());
  return mvf->interval_mean(k, k + horizon, a, phi);
}

double NhppFit::reliability_after(const data::BugCountData& data,
                                  double mission) const {
  const auto mvf = make_mean_value_function(model);
  return mvf->reliability(static_cast<double>(data.days()), mission, a, phi);
}

double nhpp_log_likelihood(const data::BugCountData& data,
                           const MeanValueFunction& mvf, double a,
                           std::span<const double> phi) {
  SRM_EXPECTS(a > 0.0, "scale a must be positive");
  double total = 0.0;
  double previous = 0.0;
  const auto counts = data.counts();
  for (std::size_t i = 0; i < data.days(); ++i) {
    const double current =
        mvf.mean_value(static_cast<double>(i + 1), a, phi);
    const double delta = current - previous;
    previous = current;
    const auto x = counts[i];
    if (delta <= 0.0) {
      if (x != 0) return kNegInf;
      continue;
    }
    total += static_cast<double>(x) * std::log(delta) - delta -
             math::log_factorial(x);
  }
  return total;
}

double profile_scale(const data::BugCountData& data,
                     const MeanValueFunction& mvf,
                     std::span<const double> phi) {
  // d/da sum_i [x_i log(a dF_i) - a dF_i] = s_k / a - F(k) = 0.
  const double growth_at_end =
      mvf.growth(static_cast<double>(data.days()), phi);
  SRM_EXPECTS(growth_at_end > 0.0,
              "growth curve must be positive at the last observation");
  return static_cast<double>(std::max<std::int64_t>(data.total(), 1)) /
         growth_at_end;
}

NhppFit fit_nhpp(const data::BugCountData& data, NhppModelKind kind) {
  const auto mvf = make_mean_value_function(kind);
  const auto supports = mvf->growth_parameter_supports();
  const std::size_t dim = supports.size();

  std::vector<double> lower;
  std::vector<double> upper;
  for (const auto& s : supports) {
    lower.push_back(s.lower);
    upper.push_back(s.upper);
  }

  const auto profile_objective = [&](std::span<const double> phi) {
    for (std::size_t j = 0; j < dim; ++j) {
      if (phi[j] <= lower[j] || phi[j] >= upper[j]) return kNegInf;
    }
    const double a = profile_scale(data, *mvf, phi);
    return nhpp_log_likelihood(data, *mvf, a, phi);
  };

  mle::NelderMeadOptions options;
  options.max_iterations = 4000;
  mle::OptimizeResult best;
  best.value = kNegInf;
  // Growth rates live on wildly different scales; restart from several
  // log-spaced corners.
  for (const double offset : {1e-3, 1e-2, 0.1, 0.5}) {
    std::vector<double> start;
    for (std::size_t j = 0; j < dim; ++j) {
      start.push_back(lower[j] + offset * (upper[j] - lower[j]));
    }
    const auto result =
        mle::nelder_mead(profile_objective, start, lower, upper, options);
    if (result.value > best.value) best = result;
  }

  NhppFit fit;
  fit.model = kind;
  fit.phi = best.argmax;
  fit.converged = best.converged;
  fit.a = profile_scale(data, *mvf, fit.phi);
  fit.log_likelihood = nhpp_log_likelihood(data, *mvf, fit.a, fit.phi);
  const double parameters = static_cast<double>(dim) + 1.0;  // phi and a
  fit.aic = -2.0 * fit.log_likelihood + 2.0 * parameters;
  fit.bic = -2.0 * fit.log_likelihood +
            parameters * std::log(static_cast<double>(data.days()));
  return fit;
}

std::vector<NhppFit> fit_all_nhpp_models(const data::BugCountData& data) {
  std::vector<NhppFit> fits;
  for (const auto kind : all_nhpp_model_kinds()) {
    fits.push_back(fit_nhpp(data, kind));
  }
  std::sort(fits.begin(), fits.end(),
            [](const NhppFit& a, const NhppFit& b) { return a.aic < b.aic; });
  return fits;
}

data::BugCountData simulate_nhpp(const MeanValueFunction& mvf, double a,
                                 std::span<const double> phi,
                                 std::size_t days, random::Rng& rng,
                                 const std::string& name) {
  SRM_EXPECTS(days >= 1, "simulate_nhpp requires days >= 1");
  std::vector<std::int64_t> counts;
  counts.reserve(days);
  double previous = 0.0;
  for (std::size_t i = 1; i <= days; ++i) {
    const double current = mvf.mean_value(static_cast<double>(i), a, phi);
    counts.push_back(
        random::sample_poisson(rng, std::max(current - previous, 0.0)));
    previous = current;
  }
  return data::BugCountData(name, std::move(counts));
}

}  // namespace srm::nhpp
