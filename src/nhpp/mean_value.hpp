// Continuous-time NHPP software reliability models — the classical family
// the paper's discrete models correspond to ("the common NHPP-based SRM",
// Sections 1-2). A finite-failure NHPP SRM is defined by its mean value
// function Lambda(t) = a * F(t), where a > 0 is the expected total bug
// content and F is a cdf-like growth curve; Musa-Okumoto is the standard
// infinite-failure exception.
//
// Implemented growth curves:
//   Goel-Okumoto (exponential):   F(t) = 1 - e^{-b t}
//   Delayed S-shaped:             F(t) = 1 - (1 + b t) e^{-b t}
//   Inflection S-shaped:          F(t) = (1 - e^{-b t}) / (1 + c e^{-b t})
//   Discrete-equivalent:          F(i) = 1 - prod_{j<=i} (1 - p_j) for a
//                                 detection-probability model (the bridge
//                                 between Sections 2 and the NHPP view)
//   Musa-Okumoto (infinite):      Lambda(t) = a ln(1 + b t)
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace srm::nhpp {

enum class NhppModelKind {
  kGoelOkumoto,
  kDelayedSShaped,
  kInflectionSShaped,
  kMusaOkumoto,
};

/// "goel-okumoto", "delayed-s", "inflection-s", "musa-okumoto".
std::string to_string(NhppModelKind kind);

std::span<const NhppModelKind> all_nhpp_model_kinds();

/// Support of one growth parameter under uniform-box MLE fitting.
struct GrowthParameterSupport {
  std::string name;
  double lower = 0.0;
  double upper = 1.0;
};

/// A mean value function Lambda(t; a, phi). For finite-failure models
/// Lambda = a F(t; phi) with F in [0, 1); for Musa-Okumoto Lambda is
/// unbounded in t and `is_finite_failure()` is false.
class MeanValueFunction {
 public:
  virtual ~MeanValueFunction() = default;

  [[nodiscard]] virtual NhppModelKind kind() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Growth parameters phi (excludes the scale a).
  [[nodiscard]] virtual std::size_t growth_parameter_count() const = 0;
  [[nodiscard]] virtual std::vector<GrowthParameterSupport>
  growth_parameter_supports() const = 0;
  [[nodiscard]] virtual bool is_finite_failure() const { return true; }

  /// F(t; phi) — the normalized growth curve in [0, 1) for finite-failure
  /// models; for Musa-Okumoto this returns Lambda(t; a=1, phi) instead
  /// (unnormalized), and callers must not assume a [0,1) range.
  [[nodiscard]] virtual double growth(double t,
                                      std::span<const double> phi) const = 0;

  /// Lambda(t) = a * growth(t).
  [[nodiscard]] double mean_value(double t, double a,
                                  std::span<const double> phi) const;

  /// Expected count on interval (t0, t1]: Lambda(t1) - Lambda(t0).
  [[nodiscard]] double interval_mean(double t0, double t1, double a,
                                     std::span<const double> phi) const;

  /// Software reliability: probability of zero failures in (t, t + x]
  /// given the process survived to t — exp(-(Lambda(t+x) - Lambda(t))).
  [[nodiscard]] double reliability(double t, double x, double a,
                                   std::span<const double> phi) const;
};

std::unique_ptr<MeanValueFunction> make_mean_value_function(
    NhppModelKind kind);

}  // namespace srm::nhpp
