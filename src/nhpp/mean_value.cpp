#include "nhpp/mean_value.hpp"

#include <array>
#include <cmath>

#include "support/error.hpp"

namespace srm::nhpp {

namespace {

void check_phi(const MeanValueFunction& mvf, std::span<const double> phi) {
  SRM_EXPECTS(phi.size() == mvf.growth_parameter_count(),
              "phi size must match the model's growth parameter count");
}

class GoelOkumoto final : public MeanValueFunction {
 public:
  NhppModelKind kind() const override { return NhppModelKind::kGoelOkumoto; }
  std::string name() const override { return "goel-okumoto"; }
  std::size_t growth_parameter_count() const override { return 1; }
  std::vector<GrowthParameterSupport> growth_parameter_supports()
      const override {
    return {{"b", 1e-8, 10.0}};
  }
  double growth(double t, std::span<const double> phi) const override {
    check_phi(*this, phi);
    SRM_EXPECTS(t >= 0.0, "time must be >= 0");
    return -std::expm1(-phi[0] * t);
  }
};

class DelayedSShaped final : public MeanValueFunction {
 public:
  NhppModelKind kind() const override {
    return NhppModelKind::kDelayedSShaped;
  }
  std::string name() const override { return "delayed-s"; }
  std::size_t growth_parameter_count() const override { return 1; }
  std::vector<GrowthParameterSupport> growth_parameter_supports()
      const override {
    return {{"b", 1e-8, 10.0}};
  }
  double growth(double t, std::span<const double> phi) const override {
    check_phi(*this, phi);
    SRM_EXPECTS(t >= 0.0, "time must be >= 0");
    const double bt = phi[0] * t;
    return 1.0 - (1.0 + bt) * std::exp(-bt);
  }
};

class InflectionSShaped final : public MeanValueFunction {
 public:
  NhppModelKind kind() const override {
    return NhppModelKind::kInflectionSShaped;
  }
  std::string name() const override { return "inflection-s"; }
  std::size_t growth_parameter_count() const override { return 2; }
  std::vector<GrowthParameterSupport> growth_parameter_supports()
      const override {
    return {{"b", 1e-8, 10.0}, {"c", 1e-8, 100.0}};
  }
  double growth(double t, std::span<const double> phi) const override {
    check_phi(*this, phi);
    SRM_EXPECTS(t >= 0.0, "time must be >= 0");
    const double e = std::exp(-phi[0] * t);
    return (1.0 - e) / (1.0 + phi[1] * e);
  }
};

class MusaOkumoto final : public MeanValueFunction {
 public:
  NhppModelKind kind() const override { return NhppModelKind::kMusaOkumoto; }
  std::string name() const override { return "musa-okumoto"; }
  std::size_t growth_parameter_count() const override { return 1; }
  std::vector<GrowthParameterSupport> growth_parameter_supports()
      const override {
    return {{"b", 1e-8, 10.0}};
  }
  bool is_finite_failure() const override { return false; }
  double growth(double t, std::span<const double> phi) const override {
    check_phi(*this, phi);
    SRM_EXPECTS(t >= 0.0, "time must be >= 0");
    return std::log1p(phi[0] * t);
  }
};

constexpr std::array<NhppModelKind, 4> kAllKinds = {
    NhppModelKind::kGoelOkumoto,
    NhppModelKind::kDelayedSShaped,
    NhppModelKind::kInflectionSShaped,
    NhppModelKind::kMusaOkumoto,
};

}  // namespace

std::string to_string(NhppModelKind kind) {
  switch (kind) {
    case NhppModelKind::kGoelOkumoto:
      return "goel-okumoto";
    case NhppModelKind::kDelayedSShaped:
      return "delayed-s";
    case NhppModelKind::kInflectionSShaped:
      return "inflection-s";
    case NhppModelKind::kMusaOkumoto:
      return "musa-okumoto";
  }
  throw InvalidArgument("unknown NhppModelKind");
}

std::span<const NhppModelKind> all_nhpp_model_kinds() { return kAllKinds; }

double MeanValueFunction::mean_value(double t, double a,
                                     std::span<const double> phi) const {
  SRM_EXPECTS(a > 0.0, "scale a must be positive");
  return a * growth(t, phi);
}

double MeanValueFunction::interval_mean(double t0, double t1, double a,
                                        std::span<const double> phi) const {
  SRM_EXPECTS(t0 <= t1, "interval must be ordered");
  return mean_value(t1, a, phi) - mean_value(t0, a, phi);
}

double MeanValueFunction::reliability(double t, double x, double a,
                                      std::span<const double> phi) const {
  SRM_EXPECTS(x >= 0.0, "mission time must be >= 0");
  return std::exp(-interval_mean(t, t + x, a, phi));
}

std::unique_ptr<MeanValueFunction> make_mean_value_function(
    NhppModelKind kind) {
  switch (kind) {
    case NhppModelKind::kGoelOkumoto:
      return std::make_unique<GoelOkumoto>();
    case NhppModelKind::kDelayedSShaped:
      return std::make_unique<DelayedSShaped>();
    case NhppModelKind::kInflectionSShaped:
      return std::make_unique<InflectionSShaped>();
    case NhppModelKind::kMusaOkumoto:
      return std::make_unique<MusaOkumoto>();
  }
  throw InvalidArgument("unknown NhppModelKind");
}

}  // namespace srm::nhpp
