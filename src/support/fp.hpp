// Approved floating-point comparison helpers.
//
// Raw `==`/`!=` on floating-point values is banned in library code by the
// repo linter (tools/srm-lint, rule `float-compare`): most such comparisons
// are accidental and silently wrong after any rounding. The helpers here are
// the sanctioned escape hatches — each call site documents whether it means
// a *bitwise-exact sentinel test* (legitimate for values that were assigned,
// not computed: a zero mean, a probability endpoint) or a
// *tolerance comparison*.
//
// This file itself is on the linter's allow-list; everything else goes
// through these functions.
#pragma once

#include <algorithm>
#include <cmath>

namespace srm::fp {

/// Bitwise-exact comparison, for sentinel values that were stored, never
/// computed (e.g. `mean == 0.0` selecting a degenerate distribution, or
/// `p == 1.0` at a quantile endpoint). Intent marker for the linter.
[[nodiscard]] constexpr bool exactly(double x, double y) noexcept {
  return x == y;  // srm-lint: allow(float-compare) — the approved helper
}

/// x is exactly +0.0 or -0.0.
[[nodiscard]] constexpr bool is_zero(double x) noexcept {
  return exactly(x, 0.0);
}

/// x is exactly 1.0.
[[nodiscard]] constexpr bool is_one(double x) noexcept {
  return exactly(x, 1.0);
}

/// Tolerance comparison: |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
/// NaN compares unequal to everything; two infinities of the same sign
/// compare equal.
[[nodiscard]] inline bool approx(double a, double b, double rel_tol = 1e-12,
                                 double abs_tol = 0.0) noexcept {
  if (exactly(a, b)) return true;  // covers equal infinities
  const double diff = std::abs(a - b);
  const double scale = std::max(std::abs(a), std::abs(b));
  return diff <= abs_tol + rel_tol * scale;
}

}  // namespace srm::fp
