// Minimal CSV reader/writer for bug-count datasets and experiment output.
//
// Dialect: comma-separated with RFC-4180-style quoting. Cells containing a
// comma, a double quote, a newline, leading/trailing whitespace, or a
// leading '#' are written inside double quotes with embedded quotes
// doubled; all other cells are written bare (so files that never need
// quoting — e.g. numeric traces — are byte-identical to the pre-quoting
// writer). The reader accepts both forms: quoted cells are taken verbatim
// (including embedded commas, quotes and newlines), bare cells are trimmed
// of surrounding whitespace. Lines whose first non-space character is '#'
// (outside any quoted cell) are treated as comments.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace srm::support {

/// Rows of string cells; all parsing of numbers is the caller's business.
using CsvRows = std::vector<std::vector<std::string>>;

/// Parses CSV from a stream. Skips blank lines and '#' comments.
CsvRows read_csv(std::istream& in);

/// Parses CSV from a file. Throws srm::InvalidArgument if unreadable.
CsvRows read_csv_file(const std::string& path);

/// Writes rows as CSV to a stream, quoting cells that need it.
void write_csv(std::ostream& out, const CsvRows& rows);

/// Writes rows as CSV to a file. Throws srm::InvalidArgument on failure.
void write_csv_file(const std::string& path, const CsvRows& rows);

/// True if `cell` must be quoted to survive a write/read round trip.
bool csv_needs_quoting(const std::string& cell);

/// Parses a cell as double; throws srm::InvalidArgument naming the cell on
/// malformed input.
double parse_double(const std::string& cell);

/// Parses a cell as a non-negative integer count.
long long parse_count(const std::string& cell);

}  // namespace srm::support
