// Minimal CSV reader/writer for bug-count datasets and experiment output.
//
// The dialect is deliberately small: comma-separated, optional header row,
// no quoting (the library never emits cells containing commas). Lines whose
// first non-space character is '#' are treated as comments.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace srm::support {

/// Rows of string cells; all parsing of numbers is the caller's business.
using CsvRows = std::vector<std::vector<std::string>>;

/// Parses CSV from a stream. Skips blank lines and '#' comments.
CsvRows read_csv(std::istream& in);

/// Parses CSV from a file. Throws srm::InvalidArgument if unreadable.
CsvRows read_csv_file(const std::string& path);

/// Writes rows as CSV to a stream.
void write_csv(std::ostream& out, const CsvRows& rows);

/// Writes rows as CSV to a file. Throws srm::InvalidArgument on failure.
void write_csv_file(const std::string& path, const CsvRows& rows);

/// Parses a cell as double; throws srm::InvalidArgument naming the cell on
/// malformed input.
double parse_double(const std::string& cell);

/// Parses a cell as a non-negative integer count.
long long parse_count(const std::string& cell);

}  // namespace srm::support
