// Non-owning callable reference — the hot-path alternative to
// std::function.
//
// std::function type-erases with an owned copy of the target: constructing
// one from a capturing lambda heap-allocates once the closure outgrows the
// small-buffer optimization, and every MCMC density evaluation then pays an
// indirect call through that owned state. The Gibbs/slice hot path creates
// thousands of short-lived closures per scan, so those allocations dominate
// the sampler's cost on top of the math.
//
// function_ref stores only {pointer to the callable, invoke thunk}: it is
// trivially copyable, never allocates, and binds to any callable (function,
// lambda, functor) with a matching signature. The referenced callable must
// outlive every call — which is exactly the slice-sampler contract, where
// the closure lives in the caller's frame for the duration of
// slice_sample. Do NOT store a function_ref beyond the statement that
// created it when bound to a temporary.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace srm::support {

template <typename Signature>
class function_ref;  // NOLINT(readability-identifier-naming)

template <typename R, typename... Args>
class function_ref<R(Args...)> {
 public:
  /// Binds to any callable invocable as R(Args...). Intentionally implicit
  /// so call sites can pass lambdas directly, mirroring std::function.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, function_ref> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor,hicpp-explicit-conversions)
  function_ref(F&& callable) noexcept {
    using T = std::remove_reference_t<F>;
    if constexpr (std::is_function_v<T>) {
      // Function-to-object pointer conversion is conditionally supported;
      // every POSIX target guarantees it (it is what dlsym relies on).
      object_ = reinterpret_cast<void*>(std::addressof(callable));
      invoke_ = [](void* object, Args... args) -> R {
        return (*reinterpret_cast<T*>(object))(std::forward<Args>(args)...);
      };
    } else {
      object_ = const_cast<void*>(
          static_cast<const void*>(std::addressof(callable)));
      invoke_ = [](void* object, Args... args) -> R {
        return (*static_cast<T*>(object))(std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

}  // namespace srm::support
