#include "support/error.hpp"

#include <sstream>

namespace srm::detail {

namespace {
std::string format(const char* macro, const char* kind, const char* condition,
                   const char* file, int line, const std::string& message) {
  std::ostringstream out;
  out << macro << ": " << kind << ": " << message << " [condition `"
      << condition << "` at " << file << ':' << line << ']';
  return out.str();
}
}  // namespace

void throw_invalid_argument(const char* macro, const char* condition,
                            const char* file, int line,
                            const std::string& message) {
  throw InvalidArgument(format(macro, "precondition violated", condition, file,
                               line, message));
}

void throw_logic_error(const char* macro, const char* condition,
                       const char* file, int line,
                       const std::string& message) {
  throw LogicError(format(macro, "internal invariant violated", condition,
                          file, line, message));
}

}  // namespace srm::detail
