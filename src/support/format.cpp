#include "support/format.hpp"

#include <cmath>

#include "support/error.hpp"

namespace srm::support {

std::string fixed(double value, int digits) {
  SRM_EXPECTS(digits >= 0 && digits <= 64,
              "fixed-point digit count must be in [0, 64]");
  // Worst case: DBL_MAX in fixed notation is 309 integer digits, plus
  // sign, point and the fractional digits.
  char buffer[448];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value,
                    std::chars_format::fixed, digits);
  SRM_EXPECTS(result.ec == std::errc{}, "fixed-point buffer overflow");
  return std::string(buffer, result.ptr);
}

std::string signed_fixed(double value, int digits) {
  std::string out = fixed(value, digits);
  if (!std::signbit(value)) out.insert(out.begin(), '+');
  return out;
}

}  // namespace srm::support
