#include "support/math.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/fp.hpp"

namespace srm::math {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = std::numeric_limits<double>::epsilon();

// Table of log(n!); filled on first use (thread-safe static init).
//
// The size is anchored to the data scale the samplers actually probe: the
// WAIC/LOO pointwise kernel evaluates log C(N - s_{i-1}, x_i) for every
// (draw, day), and N is bounded by s_k plus the lambda_max = 2000 hyperprior
// support — comfortably under 4096. With the table covering that range the
// kernel never reaches lgamma.
//
// Entries below the original 256-entry cutoff keep the running-sum
// recurrence (their historical values, relied on bit-for-bit by fixed-seed
// traces); entries above are exactly what the old lgamma fallback returned
// for them, so growing the table changes no result anywhere.
constexpr int kFactorialTableSize = 4096;
constexpr int kFactorialRecurrenceSize = 256;

const std::array<double, kFactorialTableSize>& log_factorial_table() {
  static const auto table = [] {
    std::array<double, kFactorialTableSize> t{};
    t[0] = 0.0;
    for (std::size_t n = 1; n < kFactorialRecurrenceSize; ++n) {
      t[n] = t[n - 1] + std::log(static_cast<double>(n));
    }
    for (std::size_t n = kFactorialRecurrenceSize; n < kFactorialTableSize;
         ++n) {
      t[n] = lgamma(static_cast<double>(n) + 1.0);
    }
    return t;
  }();
  return table;
}

// Lower incomplete gamma by series: P(a,x) = x^a e^-x / Gamma(a) *
// sum_{n>=0} x^n / (a(a+1)...(a+n)).
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 1000; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEps) {
      return sum * std::exp(-x + a * std::log(x) - lgamma(a));
    }
  }
  throw NumericError("regularized_gamma_p: series failed to converge");
}

// Upper incomplete gamma by Lentz continued fraction.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) {
      return std::exp(-x + a * std::log(x) - lgamma(a)) * h;
    }
  }
  throw NumericError("regularized_gamma_q: continued fraction failed");
}

// Continued fraction for the incomplete beta (Lentz).
double beta_continued_fraction(double a, double b, double x) {
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 1000; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 10 * kEps) return h;
  }
  throw NumericError("regularized_beta: continued fraction failed");
}

}  // namespace

double log_factorial(std::int64_t n) {
  SRM_EXPECTS(n >= 0, "log_factorial requires n >= 0");
  if (n < kFactorialTableSize) {
    return log_factorial_table()[static_cast<std::size_t>(n)];
  }
  return lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::int64_t n, std::int64_t k) {
  SRM_EXPECTS(n >= 0 && k >= 0 && k <= n,
              "log_binomial requires 0 <= k <= n");
  if (n < kFactorialTableSize) {
    // 0 <= k <= n, so all three arguments hit the table: three loads and
    // two subtractions — the WAIC kernel's per-(draw, day) cost.
    const auto& table = log_factorial_table();
    return table[static_cast<std::size_t>(n)] -
           table[static_cast<std::size_t>(k)] -
           table[static_cast<std::size_t>(n - k)];
  }
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_negbinomial_coefficient(double a, std::int64_t k) {
  SRM_EXPECTS(a > 0.0, "log_negbinomial_coefficient requires a > 0");
  SRM_EXPECTS(k >= 0, "log_negbinomial_coefficient requires k >= 0");
  if (k == 0) return 0.0;
  return lgamma(a + static_cast<double>(k)) - lgamma(a) -
         log_factorial(k);
}

double log_sum_exp(double a, double b) {
  if (a == -kInf) return b;
  if (b == -kInf) return a;
  const double m = std::max(a, b);
  return m + std::log1p(std::exp(std::min(a, b) - m));
}

double log_sum_exp(std::span<const double> values) {
  if (values.empty()) return -kInf;
  const double m = *std::max_element(values.begin(), values.end());
  if (m == -kInf) return -kInf;
  double sum = 0.0;
  for (const double v : values) sum += std::exp(v - m);
  return m + std::log(sum);
}

double log1mexp(double x) {
  SRM_EXPECTS(x < 0.0, "log1mexp requires x < 0");
  // Maechler (2012): switch point at -log 2 minimizes rounding error.
  constexpr double kLog2 = 0.6931471805599453;
  if (x > -kLog2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double regularized_gamma_p(double a, double x) {
  SRM_EXPECTS(a > 0.0, "regularized_gamma_p requires a > 0");
  SRM_EXPECTS(x >= 0.0, "regularized_gamma_p requires x >= 0");
  if (fp::is_zero(x)) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  SRM_EXPECTS(a > 0.0, "regularized_gamma_q requires a > 0");
  SRM_EXPECTS(x >= 0.0, "regularized_gamma_q requires x >= 0");
  if (fp::is_zero(x)) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double log_regularized_gamma_p(double a, double x) {
  SRM_EXPECTS(a > 0.0, "log_regularized_gamma_p requires a > 0");
  SRM_EXPECTS(x >= 0.0, "log_regularized_gamma_p requires x >= 0");
  if (fp::is_zero(x)) return -kInf;
  if (x >= a + 1.0) {
    // P is not small here; the direct value is accurate.
    return std::log(regularized_gamma_p(a, x));
  }
  // Series in log form: P = x^a e^{-x} / Gamma(a+1) * [1 + sum_{n>=1}
  // x^n / ((a+1)...(a+n))], with the bracket in [1, e^x].
  double term = 1.0;
  double rest = 0.0;
  double ap = a;
  for (int n = 0; n < 1000; ++n) {
    ap += 1.0;
    term *= x / ap;
    rest += term;
    if (term < rest * kEps + kEps) break;
  }
  return a * std::log(x) - x - lgamma(a + 1.0) + std::log1p(rest);
}

double inverse_regularized_gamma_p(double a, double p) {
  SRM_EXPECTS(a > 0.0, "inverse_regularized_gamma_p requires a > 0");
  SRM_EXPECTS(p >= 0.0 && p < 1.0,
              "inverse_regularized_gamma_p requires p in [0, 1)");
  if (fp::is_zero(p)) return 0.0;

  // Initial guess (Abramowitz & Stegun 26.4.17 via the Wilson-Hilferty
  // normal approximation), then Newton with bisection safeguard.
  const double g = lgamma(a);
  double x;
  if (a > 1.0) {
    const double z = normal_quantile(p);
    const double t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a));
    x = a * t * t * t;
    if (x <= 0.0) x = 1e-8;
  } else {
    const double t = 1.0 - a * (0.253 + a * 0.12);
    if (p < t) {
      x = std::pow(p / t, 1.0 / a);
    } else {
      x = 1.0 - std::log(1.0 - (p - t) / (1.0 - t));
    }
  }

  double lo = 0.0;
  double hi = kInf;
  for (int iter = 0; iter < 200; ++iter) {
    const double f = regularized_gamma_p(a, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    if (std::abs(f) < 1e-14) break;
    // pdf of Gamma(a,1) at x
    const double dfdx = std::exp(-x + (a - 1.0) * std::log(x) - g);
    double next = (dfdx > 0.0) ? x - f / dfdx : x;
    if (!(next > lo && (hi == kInf || next < hi))) {
      next = (hi == kInf) ? 2.0 * x + 1.0 : 0.5 * (lo + hi);
    }
    if (std::abs(next - x) < 1e-14 * (1.0 + x)) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double regularized_beta(double a, double b, double x) {
  SRM_EXPECTS(a > 0.0 && b > 0.0, "regularized_beta requires a, b > 0");
  SRM_EXPECTS(x >= 0.0 && x <= 1.0, "regularized_beta requires x in [0, 1]");
  if (fp::is_zero(x)) return 0.0;
  if (fp::is_one(x)) return 1.0;
  const double log_front = a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(log_front) * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - std::exp(log_front) * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double inverse_regularized_beta(double a, double b, double p) {
  SRM_EXPECTS(a > 0.0 && b > 0.0, "inverse_regularized_beta requires a, b > 0");
  SRM_EXPECTS(p >= 0.0 && p <= 1.0,
              "inverse_regularized_beta requires p in [0, 1]");
  if (fp::is_zero(p)) return 0.0;
  if (fp::is_one(p)) return 1.0;

  // Bisection with Newton acceleration; the beta CDF is monotone on [0,1].
  double lo = 0.0;
  double hi = 1.0;
  double x = a / (a + b);  // mean as the initial guess
  const double log_b = log_beta(a, b);
  for (int iter = 0; iter < 300; ++iter) {
    const double f = regularized_beta(a, b, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    if (std::abs(f) < 1e-14) break;
    const double log_pdf =
        (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - log_b;
    const double dfdx = std::exp(log_pdf);
    double next = (dfdx > 0.0) ? x - f / dfdx : x;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - x) < 1e-15) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double digamma(double x) {
  SRM_EXPECTS(x > 0.0, "digamma requires x > 0");
  double result = 0.0;
  // Recurrence to push the argument above 12, then asymptotic expansion
  // (terms through x^-8 give ~1e-14 relative error at x >= 12).
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

double trigamma(double x) {
  SRM_EXPECTS(x > 0.0, "trigamma requires x > 0");
  double result = 0.0;
  while (x < 12.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result +=
      inv * (1.0 + 0.5 * inv +
             inv2 * (1.0 / 6.0 -
                     inv2 * (1.0 / 30.0 -
                             inv2 * (1.0 / 42.0 - inv2 / 30.0))));
  return result;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  SRM_EXPECTS(p > 0.0 && p < 1.0, "normal_quantile requires p in (0, 1)");
  // Acklam's rational approximation (relative error < 1.15e-9)...
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // ...polished with one Halley step to full double precision.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double log_beta(double a, double b) {
  SRM_EXPECTS(a > 0.0 && b > 0.0, "log_beta requires a, b > 0");
  return lgamma(a) + lgamma(b) - lgamma(a + b);
}

}  // namespace srm::math
