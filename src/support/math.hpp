// Log-domain special functions used throughout the library.
//
// Everything here is self-contained (no GSL/Boost): series and continued
// fraction expansions follow the classical numerical-recipes formulations,
// with accuracy targets of ~1e-12 relative error in the regions the library
// exercises (they are unit-tested against high-precision reference values in
// tests/support/math_test.cpp).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

namespace srm::math {

/// Thread-safe log |Gamma(x)|. glibc's lgamma writes the global `signgam`,
/// which is a data race once Gibbs chains run concurrently on the runtime
/// pool; the _r variant keeps the sign in a local. Library code must call
/// this instead of std::lgamma.
inline double lgamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// Natural log of n! — exact table lookup for n < 4096 (covering the
/// initial-bug-content range the samplers probe under the default
/// hyperpriors), lgamma otherwise.
double log_factorial(std::int64_t n);

/// Natural log of the binomial coefficient C(n, k) for integer 0 <= k <= n.
/// Fast path: three table lookups (no lgamma) whenever n is inside the
/// log_factorial table — true for every WAIC/LOO pointwise evaluation.
double log_binomial(std::int64_t n, std::int64_t k);

/// Natural log of the generalized binomial coefficient
/// C(a + k - 1, k) = Gamma(a + k) / (Gamma(a) k!) for real a > 0, integer
/// k >= 0 — the combinatorial factor of the negative binomial pmf.
double log_negbinomial_coefficient(double a, std::int64_t k);

/// log(exp(a) + exp(b)) without overflow; handles -inf operands.
double log_sum_exp(double a, double b);

/// log(sum_i exp(v_i)) without overflow; returns -inf for an empty span.
double log_sum_exp(std::span<const double> values);

/// log(1 - exp(x)) for x < 0, accurate near both ends (Maechler's trick).
double log1mexp(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// a > 0, x >= 0. Series expansion for x < a + 1, continued fraction
/// otherwise.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// log P(a, x), accurate even when P underflows double precision (x << a),
/// where the plain log(regularized_gamma_p(...)) would return -inf.
double log_regularized_gamma_p(double a, double x);

/// Inverse of P(a, .): returns x with P(a, x) = p, for p in [0, 1).
/// Used for inverse-CDF sampling of (truncated) gamma variates.
double inverse_regularized_gamma_p(double a, double p);

/// Regularized incomplete beta I_x(a, b), a, b > 0, x in [0, 1].
double regularized_beta(double a, double b, double x);

/// Inverse of I_.(a, b): returns x with I_x(a, b) = p.
double inverse_regularized_beta(double a, double b, double p);

/// Digamma function psi(x) = d/dx log Gamma(x), x > 0.
double digamma(double x);

/// Trigamma function psi'(x), x > 0.
double trigamma(double x);

/// Standard normal CDF Phi(z).
double normal_cdf(double z);

/// Standard normal quantile Phi^{-1}(p), p in (0, 1) (Acklam's algorithm
/// polished with one Halley step).
double normal_quantile(double p);

/// log Beta(a, b) = lgamma(a) + lgamma(b) - lgamma(a + b).
double log_beta(double a, double b);

}  // namespace srm::math
