// Minimal JSON value / writer / reader — the serialization substrate of the
// artifact layer (src/artifact/). No third-party dependencies.
//
// Design points:
//   * Objects preserve insertion order, so a given value always serializes
//     to the same bytes — the property the spec-hash and the byte-identical
//     resume contract rest on.
//   * Integers (std::int64_t) and doubles are distinct value types. Doubles
//     are written with std::to_chars (shortest form that parses back to the
//     same bits) and always carry a '.', an exponent, or a non-finite
//     keyword, so the reader can reconstruct the numeric type: every double
//     round-trips bit-exactly, including subnormals and -0.0.
//   * Non-finite doubles are written as the bare keywords NaN / Infinity /
//     -Infinity (a documented extension over RFC 8259; standard JSON has no
//     spelling for them and silently corrupting diagnostics is worse).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace srm::support {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs (deterministic serialization).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT(*-explicit-*)
  Json(std::int64_t value) : type_(Type::kInt), int_(value) {}  // NOLINT(*-explicit-*)
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}  // NOLINT(*-explicit-*)
  Json(double value) : type_(Type::kDouble), double_(value) {}  // NOLINT(*-explicit-*)
  Json(std::string value)  // NOLINT(*-explicit-*)
      : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}  // NOLINT(*-explicit-*)
  Json(Array value)  // NOLINT(*-explicit-*)
      : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value)  // NOLINT(*-explicit-*)
      : type_(Type::kObject), object_(std::move(value)) {}

  /// std::size_t counts (chain counts, days, sample sizes). Throws
  /// srm::InvalidArgument if the value does not fit an std::int64_t.
  static Json from_unsigned(std::uint64_t value);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_int() const { return type_ == Type::kInt; }
  [[nodiscard]] bool is_double() const { return type_ == Type::kDouble; }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; each throws srm::InvalidArgument on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Unsigned view of as_int(); rejects negatives.
  [[nodiscard]] std::uint64_t as_unsigned() const;
  /// Numeric accessor: kDouble verbatim, kInt converted. Integers written
  /// by the double serializer always carry a '.', so a stored double never
  /// comes back through the (potentially lossy) int conversion.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // --- object helpers -----------------------------------------------------
  /// Member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Member lookup; throws srm::InvalidArgument naming the key when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Appends (or overwrites) a member, keeping insertion order.
  void set(std::string key, Json value);

  // --- array helpers ------------------------------------------------------
  void push_back(Json value);

  // --- serialization ------------------------------------------------------
  /// Serializes the value. indent < 0: compact one-line form (the canonical
  /// hashing form); indent >= 0: pretty-printed with that many spaces per
  /// level and a trailing newline (the on-disk artifact form).
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (with the NaN/Infinity extension).
  /// Throws srm::InvalidArgument on malformed input, naming the offset.
  static Json parse(std::string_view text);

  /// Shortest decimal form of `value` that parses back to the same bits
  /// (std::to_chars), with ".0" appended to integral finite values so the
  /// type survives a round trip. Non-finite: NaN / Infinity / -Infinity.
  static std::string format_double(double value);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace srm::support
