#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/format.hpp"

namespace srm::support {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  SRM_EXPECTS(header_.empty() || row.size() == header_.size(),
              "Table row width must match the header");
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  // Column widths = max over header and all rows.
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  auto emit = [&](std::ostringstream& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << (c == 0 ? "| " : " ");
      out << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';
  std::size_t total = 1;
  for (std::size_t c = 0; c < cols; ++c) total += width[c] + 3;
  const std::string rule(total, '-');
  out << rule << '\n';
  if (!header_.empty()) {
    emit(out, header_);
    out << rule << '\n';
  }
  for (const auto& row : rows_) emit(out, row);
  out << rule << '\n';
  return out.str();
}

std::string format_double(double value, int digits) {
  // to_chars-backed: snprintf "%.*f" here was the one locale-sensitive
  // formatter feeding every report table.
  return fixed(value, digits);
}

std::string format_deviation(double value, int digits) {
  std::string out = signed_fixed(value, digits);
  out.insert(out.begin(), '(');
  out.push_back(')');
  return out;
}

std::string render_box_plots(const std::vector<BoxStats>& boxes, int width) {
  SRM_EXPECTS(width >= 10, "box plot width must be at least 10 cells");
  if (boxes.empty()) return {};

  double lo = boxes.front().whisker_low;
  double hi = boxes.front().whisker_high;
  std::size_t label_width = 0;
  for (const auto& b : boxes) {
    SRM_EXPECTS(b.whisker_low <= b.q1 && b.q1 <= b.median &&
                    b.median <= b.q3 && b.q3 <= b.whisker_high,
                "box statistics must be ordered");
    lo = std::min(lo, b.whisker_low);
    hi = std::max(hi, b.whisker_high);
    label_width = std::max(label_width, b.label.size());
  }
  if (hi <= lo) hi = lo + 1.0;  // degenerate posteriors collapse to a point

  const double scale = (width - 1) / (hi - lo);
  auto cell = [&](double v) {
    return std::clamp(static_cast<int>(std::lround((v - lo) * scale)), 0,
                      width - 1);
  };

  std::ostringstream out;
  for (const auto& b : boxes) {
    std::string line(static_cast<std::size_t>(width), ' ');
    const int wl = cell(b.whisker_low);
    const int q1 = cell(b.q1);
    const int md = cell(b.median);
    const int q3 = cell(b.q3);
    const int wh = cell(b.whisker_high);
    for (int i = wl; i <= wh; ++i) line[static_cast<std::size_t>(i)] = '-';
    for (int i = q1; i <= q3; ++i) line[static_cast<std::size_t>(i)] = '=';
    line[static_cast<std::size_t>(wl)] = '|';
    line[static_cast<std::size_t>(wh)] = '|';
    line[static_cast<std::size_t>(q1)] = '[';
    line[static_cast<std::size_t>(q3)] = ']';
    line[static_cast<std::size_t>(md)] = '#';
    out << b.label << std::string(label_width - b.label.size(), ' ') << " |"
        << line << "|\n";
  }
  out << std::string(label_width, ' ') << " +"
      << std::string(static_cast<std::size_t>(width), '-')
      << "+\n";
  std::ostringstream axis;
  const std::string lo_str = format_double(lo, 1);
  const std::string hi_str = format_double(hi, 1);
  axis << std::string(label_width, ' ') << "  " << lo_str;
  const int pad = width - static_cast<int>(lo_str.size()) -
                  static_cast<int>(hi_str.size());
  axis << std::string(static_cast<std::size_t>(std::max(pad, 1)), ' ')
       << hi_str << '\n';
  out << axis.str();
  return out.str();
}

}  // namespace srm::support
