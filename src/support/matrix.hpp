// Flat row-major matrix of doubles — the hot-path replacement for
// std::vector<std::vector<double>> buffers (one allocation, contiguous
// rows, cache-friendly row scans). Used for the data_points x samples
// pointwise log-likelihood table that WAIC/PSIS-LOO consume.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace srm::support {

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols cells, all initialized to `value`.
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return cells_.empty(); }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return cells_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return cells_[r * cols_ + c];
  }

  /// One contiguous row as a span (bounds-checked).
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  [[nodiscard]] double* data() { return cells_.data(); }
  [[nodiscard]] const double* data() const { return cells_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> cells_;
};

}  // namespace srm::support
