// Fixed-width ASCII table rendering used by the bench binaries to print the
// paper's tables, and an ASCII horizontal box-plot renderer for the figures.
#pragma once

#include <string>
#include <vector>

namespace srm::support {

/// A simple column-aligned text table with an optional title.
///
/// Usage:
///   Table t{"Comparison of WAIC"};
///   t.set_header({"", "model0", "model1"});
///   t.add_row({"48days", "171.8", "168.6"});
///   std::cout << t.render();
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Renders with `|`-separated columns and a rule under the header.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` digits after the decimal point.
[[nodiscard]] std::string format_double(double value, int digits = 3);

/// Formats `value` as a signed deviation, e.g. "(+5.550)" / "(-13.211)".
[[nodiscard]] std::string format_deviation(double value, int digits = 3);

/// Five-number summary consumed by the box-plot renderer.
struct BoxStats {
  std::string label;
  double whisker_low = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_high = 0.0;
};

/// Renders horizontal ASCII box plots on a shared axis:
///
///   model0 |        |----[===|=====]------|
///   model1 | |-[=|]--|
///          +------------------------------+
///          0                            820
///
/// `width` is the number of character cells for the axis.
[[nodiscard]] std::string render_box_plots(const std::vector<BoxStats>& boxes,
                                           int width = 60);

}  // namespace srm::support
