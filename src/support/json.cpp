#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "support/error.hpp"

namespace srm::support {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* const kNames[] = {"null",   "bool",  "int",   "double",
                                       "string", "array", "object"};
  throw InvalidArgument(std::string("JSON type mismatch: wanted ") + want +
                        ", value is " + kNames[static_cast<int>(got)]);
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses one stack frame per level, so this cap is what turns a
/// hostile "[[[[[…" document into a clean srm::InvalidArgument instead of
/// a stack overflow. 128 is far beyond any document this library writes
/// (cell envelopes nest < 10 deep).
constexpr int kMaxParseDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_ws();
    SRM_EXPECTS(pos_ == text_.size(),
                "JSON: trailing characters at offset " + std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("JSON: " + what + " at offset " +
                          std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxParseDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      case 'N':
        if (consume_literal("NaN")) {
          return Json(std::numeric_limits<double>::quiet_NaN());
        }
        fail("invalid literal");
      case 'I':
        if (consume_literal("Infinity")) {
          return Json(std::numeric_limits<double>::infinity());
        }
        fail("invalid literal");
      default:
        if (c == '-' && consume_literal("-Infinity")) {
          return Json(-std::numeric_limits<double>::infinity());
        }
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    ++pos_;  // '{'
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    ++pos_;  // '['
    Json::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("raw control character in string");
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  [[nodiscard]] bool digit_at(std::size_t pos) const {
    return pos < text_.size() && text_[pos] >= '0' && text_[pos] <= '9';
  }

  // Strict RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?
  // [0-9]+)?. Untrusted service input means the lenient scan that once
  // lived here (which took ".5", "01", "1." or "1e+") is no longer
  // acceptable — anything off-grammar fails with an offset instead of
  // guessing.
  Json parse_number() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit_at(pos_)) fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit_at(pos_)) fail("leading zero in number");
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      if (!digit_at(pos_)) fail("expected digit after decimal point");
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit_at(pos_)) fail("expected digit in exponent");
      while (digit_at(pos_)) ++pos_;
    }
    const std::string_view token = text_.substr(begin, pos_ - begin);
    const char* b = token.data();
    const char* e = b + token.size();
    if (!is_double) {
      std::int64_t value = 0;
      const auto [ptr, ec] = std::from_chars(b, e, value);
      if (ec == std::errc{} && ptr == e) return Json(value);
      // Out of std::int64_t range: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(b, e, value);
    if (ec != std::errc{} || ptr != e) fail("invalid number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::from_unsigned(std::uint64_t value) {
  SRM_EXPECTS(value <=
                  static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()),
              "JSON integer out of std::int64_t range");
  return Json(static_cast<std::int64_t>(value));
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kInt) type_error("int", type_);
  return int_;
}

std::uint64_t Json::as_unsigned() const {
  const std::int64_t value = as_int();
  SRM_EXPECTS(value >= 0, "JSON integer is negative where a count was "
                          "expected");
  return static_cast<std::uint64_t>(value);
}

double Json::as_double() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  type_error("number", type_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  SRM_EXPECTS(found != nullptr,
              "JSON object has no member '" + std::string(key) + "'");
  return *found;
}

void Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

std::string Json::format_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  SRM_ASSERT(ec == std::errc{}, "to_chars failed for a finite double");
  std::string out(buf, ptr);
  // Keep the numeric type visible to the reader: integral doubles get a
  // ".0" so "5" stays an int and "5.0" stays a double (and "-0" keeps its
  // sign through the double path).
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_indent = [&](int levels) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(levels),
               ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: out += format_double(double_); break;
    case Type::kString: write_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      // Arrays of scalars stay on one line even in pretty mode (sample
      // vectors would otherwise dominate the file in newlines); arrays of
      // composites get one element per line.
      const bool nested =
          pretty && (array_.front().is_array() || array_.front().is_object());
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += pretty && !nested ? ", " : ",";
        if (nested) newline_indent(depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (nested) newline_indent(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        if (pretty) newline_indent(depth + 1);
        write_escaped(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      if (pretty) newline_indent(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace srm::support
