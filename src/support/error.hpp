// Error handling and contract machinery for the bayes-srm library.
//
// Conventions (C++ Core Guidelines E.2, I.5/I.7):
//  * Precondition violations on the public API throw srm::InvalidArgument
//    via SRM_EXPECTS — callers can recover and the message names the
//    violated condition.
//  * Internal invariants use SRM_ENSURES/SRM_ASSERT which throw
//    srm::LogicError; a failure indicates a library bug, not user error.
//  * Numerical failures (non-convergence, domain errors discovered at
//    run time) throw srm::NumericError.
#pragma once

#include <stdexcept>
#include <string>

namespace srm {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An internal invariant failed — indicates a bug inside the library.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or left its domain.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

namespace detail {
// Each thrower receives the name of the macro that fired so the exception
// message attributes the failure to the check the source actually used
// (SRM_ASSERT must not masquerade as SRM_ENSURES).
[[noreturn]] void throw_invalid_argument(const char* macro,
                                         const char* condition,
                                         const char* file, int line,
                                         const std::string& message);
[[noreturn]] void throw_logic_error(const char* macro, const char* condition,
                                    const char* file, int line,
                                    const std::string& message);
}  // namespace detail

}  // namespace srm

/// Precondition check on a public API. Throws srm::InvalidArgument.
#define SRM_EXPECTS(cond, message)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::srm::detail::throw_invalid_argument("SRM_EXPECTS", #cond, __FILE__, \
                                            __LINE__, (message));           \
    }                                                                       \
  } while (false)

/// Postcondition / invariant check. Throws srm::LogicError.
#define SRM_ENSURES(cond, message)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::srm::detail::throw_logic_error("SRM_ENSURES", #cond, __FILE__,      \
                                       __LINE__, (message));                \
    }                                                                       \
  } while (false)

/// Mid-function invariant check. Same contract as SRM_ENSURES (throws
/// srm::LogicError) but reports itself as SRM_ASSERT in the message.
#define SRM_ASSERT(cond, message)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::srm::detail::throw_logic_error("SRM_ASSERT", #cond, __FILE__,       \
                                       __LINE__, (message));                \
    }                                                                       \
  } while (false)
