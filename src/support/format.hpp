// Locale-independent number formatting.
//
// std::to_string and printf-family "%f" format through the global C locale:
// under e.g. de_DE a double renders as "1,5" and every golden trace, CSV,
// JSON artifact and report table silently changes bytes. These helpers are
// built on std::to_chars, which the standard defines as printf in the "C"
// locale — same bytes everywhere, regardless of what the host (or an
// embedding application) did to LC_NUMERIC.
//
// The srm-lint `locale-format` rule bans std::to_string / setlocale /
// std::locale outside this module; route all rendering through here.
#pragma once

#include <charconv>
#include <concepts>
#include <string>

namespace srm::support {

/// Decimal rendering of an integer, locale-independent.
template <std::integral T>
std::string dec(T value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

/// Fixed-point rendering, byte-identical to printf("%.*f", digits, value)
/// in the "C" locale. The default matches std::to_string(double), which is
/// specified as sprintf("%f") — six digits.
std::string fixed(double value, int digits = 6);

/// Explicit-sign fixed-point rendering, byte-identical to
/// printf("%+.*f", digits, value) in the "C" locale.
std::string signed_fixed(double value, int digits = 3);

}  // namespace srm::support
