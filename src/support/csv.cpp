#include "support/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace srm::support {

namespace {

bool is_blank(char c) { return c == ' ' || c == '\t'; }

void trim(std::string& cell) {
  const auto b = cell.find_first_not_of(" \t");
  if (b == std::string::npos) {
    cell.clear();
    return;
  }
  const auto e = cell.find_last_not_of(" \t");
  cell = cell.substr(b, e - b + 1);
}

}  // namespace

CsvRows read_csv(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  CsvRows rows;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    // Record start: classify the line as comment / blank / data by its
    // first non-space character (quoted continuation lines never reach
    // here, so '#' inside a quoted cell is plain data).
    std::size_t j = i;
    while (j < n && is_blank(text[j])) ++j;
    if (j < n && text[j] == '#') {
      while (j < n && text[j] != '\n') ++j;
      i = j < n ? j + 1 : n;
      continue;
    }
    if (j >= n) break;
    if (text[j] == '\n' || (text[j] == '\r' && j + 1 < n &&
                            text[j + 1] == '\n')) {
      i = text[j] == '\n' ? j + 1 : j + 2;
      continue;
    }

    std::vector<std::string> row;
    bool record_done = false;
    while (!record_done) {
      while (i < n && is_blank(text[i])) ++i;
      std::string cell;
      if (i < n && text[i] == '"') {
        // Quoted cell: verbatim contents, "" unescapes to ", may span
        // newlines.
        ++i;
        bool closed = false;
        while (i < n) {
          const char c = text[i++];
          if (c == '"') {
            if (i < n && text[i] == '"') {
              cell += '"';
              ++i;
              continue;
            }
            closed = true;
            break;
          }
          cell += c;
        }
        SRM_EXPECTS(closed, "CSV: unterminated quoted cell");
        while (i < n && is_blank(text[i])) ++i;
        SRM_EXPECTS(i >= n || text[i] == ',' || text[i] == '\n' ||
                        (text[i] == '\r' && i + 1 < n && text[i + 1] == '\n'),
                    "CSV: unexpected character after closing quote");
      } else {
        // Bare cell: up to the next separator, trimmed of surrounding
        // whitespace.
        while (i < n && text[i] != ',' && text[i] != '\n') cell += text[i++];
        if (i < n && text[i] == '\n' && !cell.empty() && cell.back() == '\r') {
          cell.pop_back();
        }
        trim(cell);
      }
      row.push_back(std::move(cell));
      if (i < n && text[i] == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      if (i >= n || text[i] == '\n') {
        record_done = true;
        if (i < n) ++i;
      } else {
        ++i;  // ','
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

CsvRows read_csv_file(const std::string& path) {
  std::ifstream in(path);
  SRM_EXPECTS(in.good(), "cannot open CSV file: " + path);
  return read_csv(in);
}

bool csv_needs_quoting(const std::string& cell) {
  if (cell.empty()) return false;
  if (cell.find_first_of(",\"\n\r") != std::string::npos) return true;
  // The reader trims bare cells and treats a leading '#' as a comment
  // marker, so those must be quoted to survive a round trip.
  return is_blank(cell.front()) || is_blank(cell.back()) ||
         cell.front() == '#';
}

void write_csv(std::ostream& out, const CsvRows& rows) {
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      if (csv_needs_quoting(row[c])) {
        out << '"';
        for (const char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvRows& rows) {
  std::ofstream out(path);
  SRM_EXPECTS(out.good(), "cannot open CSV file for writing: " + path);
  write_csv(out, rows);
  SRM_EXPECTS(out.good(), "write failed for CSV file: " + path);
}

double parse_double(const std::string& cell) {
  double value = 0.0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  SRM_EXPECTS(ec == std::errc{} && ptr == end,
              "malformed numeric CSV cell: '" + cell + "'");
  return value;
}

long long parse_count(const std::string& cell) {
  long long value = 0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  SRM_EXPECTS(ec == std::errc{} && ptr == end && value >= 0,
              "malformed count CSV cell: '" + cell + "'");
  return value;
}

}  // namespace srm::support
