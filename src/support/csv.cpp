#include "support/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace srm::support {

CsvRows read_csv(std::istream& in) {
  CsvRows rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::vector<std::string> row;
    std::string cell;
    std::istringstream cells(line);
    while (std::getline(cells, cell, ',')) {
      // Trim surrounding whitespace.
      const auto b = cell.find_first_not_of(" \t");
      const auto e = cell.find_last_not_of(" \t");
      row.push_back(b == std::string::npos ? std::string{}
                                           : cell.substr(b, e - b + 1));
    }
    if (!line.empty() && line.back() == ',') row.emplace_back();
    rows.push_back(std::move(row));
  }
  return rows;
}

CsvRows read_csv_file(const std::string& path) {
  std::ifstream in(path);
  SRM_EXPECTS(in.good(), "cannot open CSV file: " + path);
  return read_csv(in);
}

void write_csv(std::ostream& out, const CsvRows& rows) {
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvRows& rows) {
  std::ofstream out(path);
  SRM_EXPECTS(out.good(), "cannot open CSV file for writing: " + path);
  write_csv(out, rows);
  SRM_EXPECTS(out.good(), "write failed for CSV file: " + path);
}

double parse_double(const std::string& cell) {
  double value = 0.0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  SRM_EXPECTS(ec == std::errc{} && ptr == end,
              "malformed numeric CSV cell: '" + cell + "'");
  return value;
}

long long parse_count(const std::string& cell) {
  long long value = 0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  SRM_EXPECTS(ec == std::errc{} && ptr == end && value >= 0,
              "malformed count CSV cell: '" + cell + "'");
  return value;
}

}  // namespace srm::support
