// Portable fixed-width SIMD lanes: four double lanes per vector, selected
// at compile time from the target ISA (no runtime CPUID in library code).
//
//   backend   register layout        selected when
//   -------   --------------------   ----------------------------------
//   avx2      1 x __m256d            __AVX2__         (SRM_SIMD=ON adds
//                                    -mavx2 to the kernel TUs only)
//   sse2      2 x __m128d            __SSE2__ / x86-64 baseline
//   neon      2 x float64x2_t        __aarch64__ (f64 lanes need A64)
//   scalar    double[4]              everything else, or
//                                    SRM_SIMD_FORCE_SCALAR
//
// Every operation exposed here is an IEEE-754 *exact* elementwise
// operation (add/sub/mul/div, comparisons, bit manipulation) — never a
// fused multiply-add, approximation, or reduction — so the same algorithm
// produces bit-identical lanes on every backend. That property is what
// lets the vectorized golden traces (tests/mcmc) pin one digest per case
// across the SRM_SIMD=ON/OFF CI legs.
//
// Translation units in one binary may be compiled with different ISA
// flags, so the whole API lives in a backend-named inline namespace
// (SRM_SIMD_NS_BEGIN/END): each TU's instantiation gets distinct symbols
// and the linker can never mix, say, an AVX2 kernel into a baseline test.
#pragma once

#include <cstdint>
#include <cstring>

#if defined(SRM_SIMD_FORCE_SCALAR)
#define SRM_SIMD_BACKEND_SCALAR 1
#elif defined(__AVX2__)
#include <immintrin.h>
#define SRM_SIMD_BACKEND_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define SRM_SIMD_BACKEND_SSE2 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define SRM_SIMD_BACKEND_NEON 1
#else
#define SRM_SIMD_BACKEND_SCALAR 1
#endif

#if defined(SRM_SIMD_BACKEND_AVX2)
#define SRM_SIMD_NS_BEGIN \
  namespace srm::simd {   \
  inline namespace backend_avx2 {
#elif defined(SRM_SIMD_BACKEND_SSE2)
#define SRM_SIMD_NS_BEGIN \
  namespace srm::simd {   \
  inline namespace backend_sse2 {
#elif defined(SRM_SIMD_BACKEND_NEON)
#define SRM_SIMD_NS_BEGIN \
  namespace srm::simd {   \
  inline namespace backend_neon {
#else
#define SRM_SIMD_NS_BEGIN \
  namespace srm::simd {   \
  inline namespace backend_scalar {
#endif
#define SRM_SIMD_NS_END \
  }                     \
  }

SRM_SIMD_NS_BEGIN

/// Lane count is fixed at 4 on every backend so batch loops never need
/// per-ISA tiling.
inline constexpr std::size_t kLanes = 4;

#if defined(SRM_SIMD_BACKEND_AVX2)

inline constexpr const char* kIsaName = "avx2";

struct VecD {
  __m256d v;
};
struct VecI {
  __m256i v;
};

inline VecD vset1(double x) { return {_mm256_set1_pd(x)}; }
inline VecD vload(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void vstore(double* p, VecD a) { _mm256_storeu_pd(p, a.v); }

inline VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
inline VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline VecD operator/(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }

inline VecD vlt(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
inline VecD vle(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
inline VecD vgt(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}
inline VecD vge(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
inline VecD veq(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
}
/// Unordered not-equal: true when either operand is NaN.
inline VecD vneq(VecD a, VecD b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_NEQ_UQ)};
}

inline VecD vor(VecD a, VecD b) { return {_mm256_or_pd(a.v, b.v)}; }
inline VecD vand(VecD a, VecD b) { return {_mm256_and_pd(a.v, b.v)}; }

/// Lanewise `mask ? a : b`; mask lanes are all-ones or all-zero bits.
inline VecD vselect(VecD mask, VecD a, VecD b) {
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
}

inline VecI to_bits(VecD a) { return {_mm256_castpd_si256(a.v)}; }
inline VecD from_bits(VecI a) { return {_mm256_castsi256_pd(a.v)}; }

inline VecI iset1(std::uint64_t x) {
  return {_mm256_set1_epi64x(static_cast<long long>(x))};
}
inline VecI iadd(VecI a, VecI b) { return {_mm256_add_epi64(a.v, b.v)}; }
inline VecI isub(VecI a, VecI b) { return {_mm256_sub_epi64(a.v, b.v)}; }
inline VecI iand(VecI a, VecI b) { return {_mm256_and_si256(a.v, b.v)}; }
inline VecI ior(VecI a, VecI b) { return {_mm256_or_si256(a.v, b.v)}; }
inline VecI ixor(VecI a, VecI b) { return {_mm256_xor_si256(a.v, b.v)}; }
template <int N>
inline VecI ishl(VecI a) {
  return {_mm256_slli_epi64(a.v, N)};
}
template <int N>
inline VecI ishr(VecI a) {
  return {_mm256_srli_epi64(a.v, N)};
}

#elif defined(SRM_SIMD_BACKEND_SSE2)

inline constexpr const char* kIsaName = "sse2";

struct VecD {
  __m128d lo, hi;
};
struct VecI {
  __m128i lo, hi;
};

inline VecD vset1(double x) {
  const __m128d v = _mm_set1_pd(x);
  return {v, v};
}
inline VecD vload(const double* p) {
  return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
}
inline void vstore(double* p, VecD a) {
  _mm_storeu_pd(p, a.lo);
  _mm_storeu_pd(p + 2, a.hi);
}

inline VecD operator+(VecD a, VecD b) {
  return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
}
inline VecD operator-(VecD a, VecD b) {
  return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
}
inline VecD operator*(VecD a, VecD b) {
  return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
}
inline VecD operator/(VecD a, VecD b) {
  return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)};
}

inline VecD vlt(VecD a, VecD b) {
  return {_mm_cmplt_pd(a.lo, b.lo), _mm_cmplt_pd(a.hi, b.hi)};
}
inline VecD vle(VecD a, VecD b) {
  return {_mm_cmple_pd(a.lo, b.lo), _mm_cmple_pd(a.hi, b.hi)};
}
inline VecD vgt(VecD a, VecD b) {
  return {_mm_cmpgt_pd(a.lo, b.lo), _mm_cmpgt_pd(a.hi, b.hi)};
}
inline VecD vge(VecD a, VecD b) {
  return {_mm_cmpge_pd(a.lo, b.lo), _mm_cmpge_pd(a.hi, b.hi)};
}
inline VecD veq(VecD a, VecD b) {
  return {_mm_cmpeq_pd(a.lo, b.lo), _mm_cmpeq_pd(a.hi, b.hi)};
}
/// Unordered not-equal: true when either operand is NaN.
inline VecD vneq(VecD a, VecD b) {
  return {_mm_cmpneq_pd(a.lo, b.lo), _mm_cmpneq_pd(a.hi, b.hi)};
}

inline VecD vor(VecD a, VecD b) {
  return {_mm_or_pd(a.lo, b.lo), _mm_or_pd(a.hi, b.hi)};
}
inline VecD vand(VecD a, VecD b) {
  return {_mm_and_pd(a.lo, b.lo), _mm_and_pd(a.hi, b.hi)};
}

/// Lanewise `mask ? a : b`; mask lanes are all-ones or all-zero bits.
inline VecD vselect(VecD mask, VecD a, VecD b) {
  return {_mm_or_pd(_mm_and_pd(mask.lo, a.lo),
                    _mm_andnot_pd(mask.lo, b.lo)),
          _mm_or_pd(_mm_and_pd(mask.hi, a.hi),
                    _mm_andnot_pd(mask.hi, b.hi))};
}

inline VecI to_bits(VecD a) {
  return {_mm_castpd_si128(a.lo), _mm_castpd_si128(a.hi)};
}
inline VecD from_bits(VecI a) {
  return {_mm_castsi128_pd(a.lo), _mm_castsi128_pd(a.hi)};
}

inline VecI iset1(std::uint64_t x) {
  const __m128i v = _mm_set1_epi64x(static_cast<long long>(x));
  return {v, v};
}
inline VecI iadd(VecI a, VecI b) {
  return {_mm_add_epi64(a.lo, b.lo), _mm_add_epi64(a.hi, b.hi)};
}
inline VecI isub(VecI a, VecI b) {
  return {_mm_sub_epi64(a.lo, b.lo), _mm_sub_epi64(a.hi, b.hi)};
}
inline VecI iand(VecI a, VecI b) {
  return {_mm_and_si128(a.lo, b.lo), _mm_and_si128(a.hi, b.hi)};
}
inline VecI ior(VecI a, VecI b) {
  return {_mm_or_si128(a.lo, b.lo), _mm_or_si128(a.hi, b.hi)};
}
inline VecI ixor(VecI a, VecI b) {
  return {_mm_xor_si128(a.lo, b.lo), _mm_xor_si128(a.hi, b.hi)};
}
template <int N>
inline VecI ishl(VecI a) {
  return {_mm_slli_epi64(a.lo, N), _mm_slli_epi64(a.hi, N)};
}
template <int N>
inline VecI ishr(VecI a) {
  return {_mm_srli_epi64(a.lo, N), _mm_srli_epi64(a.hi, N)};
}

#elif defined(SRM_SIMD_BACKEND_NEON)

inline constexpr const char* kIsaName = "neon";

struct VecD {
  float64x2_t lo, hi;
};
struct VecI {
  uint64x2_t lo, hi;
};

inline VecD vset1(double x) {
  const float64x2_t v = vdupq_n_f64(x);
  return {v, v};
}
inline VecD vload(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
inline void vstore(double* p, VecD a) {
  vst1q_f64(p, a.lo);
  vst1q_f64(p + 2, a.hi);
}

inline VecD operator+(VecD a, VecD b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline VecD operator-(VecD a, VecD b) {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline VecD operator*(VecD a, VecD b) {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
inline VecD operator/(VecD a, VecD b) {
  return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
}

inline VecD from_mask(uint64x2_t lo, uint64x2_t hi) {
  return {vreinterpretq_f64_u64(lo), vreinterpretq_f64_u64(hi)};
}
inline VecD vlt(VecD a, VecD b) {
  return from_mask(vcltq_f64(a.lo, b.lo), vcltq_f64(a.hi, b.hi));
}
inline VecD vle(VecD a, VecD b) {
  return from_mask(vcleq_f64(a.lo, b.lo), vcleq_f64(a.hi, b.hi));
}
inline VecD vgt(VecD a, VecD b) {
  return from_mask(vcgtq_f64(a.lo, b.lo), vcgtq_f64(a.hi, b.hi));
}
inline VecD vge(VecD a, VecD b) {
  return from_mask(vcgeq_f64(a.lo, b.lo), vcgeq_f64(a.hi, b.hi));
}
inline VecD veq(VecD a, VecD b) {
  return from_mask(vceqq_f64(a.lo, b.lo), vceqq_f64(a.hi, b.hi));
}
/// Unordered not-equal: true when either operand is NaN.
inline VecD vneq(VecD a, VecD b) {
  const uint64x2_t ones = vdupq_n_u64(~0ULL);
  return from_mask(veorq_u64(vceqq_f64(a.lo, b.lo), ones),
                   veorq_u64(vceqq_f64(a.hi, b.hi), ones));
}

inline VecD vor(VecD a, VecD b) {
  return from_mask(vorrq_u64(vreinterpretq_u64_f64(a.lo),
                             vreinterpretq_u64_f64(b.lo)),
                   vorrq_u64(vreinterpretq_u64_f64(a.hi),
                             vreinterpretq_u64_f64(b.hi)));
}
inline VecD vand(VecD a, VecD b) {
  return from_mask(vandq_u64(vreinterpretq_u64_f64(a.lo),
                             vreinterpretq_u64_f64(b.lo)),
                   vandq_u64(vreinterpretq_u64_f64(a.hi),
                             vreinterpretq_u64_f64(b.hi)));
}

/// Lanewise `mask ? a : b`; mask lanes are all-ones or all-zero bits.
inline VecD vselect(VecD mask, VecD a, VecD b) {
  return {vbslq_f64(vreinterpretq_u64_f64(mask.lo), a.lo, b.lo),
          vbslq_f64(vreinterpretq_u64_f64(mask.hi), a.hi, b.hi)};
}

inline VecI to_bits(VecD a) {
  return {vreinterpretq_u64_f64(a.lo), vreinterpretq_u64_f64(a.hi)};
}
inline VecD from_bits(VecI a) {
  return {vreinterpretq_f64_u64(a.lo), vreinterpretq_f64_u64(a.hi)};
}

inline VecI iset1(std::uint64_t x) {
  const uint64x2_t v = vdupq_n_u64(x);
  return {v, v};
}
inline VecI iadd(VecI a, VecI b) {
  return {vaddq_u64(a.lo, b.lo), vaddq_u64(a.hi, b.hi)};
}
inline VecI isub(VecI a, VecI b) {
  return {vsubq_u64(a.lo, b.lo), vsubq_u64(a.hi, b.hi)};
}
inline VecI iand(VecI a, VecI b) {
  return {vandq_u64(a.lo, b.lo), vandq_u64(a.hi, b.hi)};
}
inline VecI ior(VecI a, VecI b) {
  return {vorrq_u64(a.lo, b.lo), vorrq_u64(a.hi, b.hi)};
}
inline VecI ixor(VecI a, VecI b) {
  return {veorq_u64(a.lo, b.lo), veorq_u64(a.hi, b.hi)};
}
template <int N>
inline VecI ishl(VecI a) {
  return {vshlq_n_u64(a.lo, N), vshlq_n_u64(a.hi, N)};
}
template <int N>
inline VecI ishr(VecI a) {
  return {vshrq_n_u64(a.lo, N), vshrq_n_u64(a.hi, N)};
}

#else  // scalar fallback

inline constexpr const char* kIsaName = "scalar";

struct VecD {
  double l[4];
};
struct VecI {
  std::uint64_t l[4];
};

inline VecD vset1(double x) { return {{x, x, x, x}}; }
inline VecD vload(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void vstore(double* p, VecD a) {
  p[0] = a.l[0];
  p[1] = a.l[1];
  p[2] = a.l[2];
  p[3] = a.l[3];
}

inline VecD operator+(VecD a, VecD b) {
  return {{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2],
           a.l[3] + b.l[3]}};
}
inline VecD operator-(VecD a, VecD b) {
  return {{a.l[0] - b.l[0], a.l[1] - b.l[1], a.l[2] - b.l[2],
           a.l[3] - b.l[3]}};
}
inline VecD operator*(VecD a, VecD b) {
  return {{a.l[0] * b.l[0], a.l[1] * b.l[1], a.l[2] * b.l[2],
           a.l[3] * b.l[3]}};
}
inline VecD operator/(VecD a, VecD b) {
  return {{a.l[0] / b.l[0], a.l[1] / b.l[1], a.l[2] / b.l[2],
           a.l[3] / b.l[3]}};
}

inline constexpr std::uint64_t kMaskOn = ~0ULL;

inline VecD mask_of(bool m0, bool m1, bool m2, bool m3) {
  VecI bits{{m0 ? kMaskOn : 0U, m1 ? kMaskOn : 0U, m2 ? kMaskOn : 0U,
             m3 ? kMaskOn : 0U}};
  VecD out;
  std::memcpy(out.l, bits.l, sizeof(out.l));
  return out;
}

inline VecD vlt(VecD a, VecD b) {
  return mask_of(a.l[0] < b.l[0], a.l[1] < b.l[1], a.l[2] < b.l[2],
                 a.l[3] < b.l[3]);
}
inline VecD vle(VecD a, VecD b) {
  return mask_of(a.l[0] <= b.l[0], a.l[1] <= b.l[1], a.l[2] <= b.l[2],
                 a.l[3] <= b.l[3]);
}
inline VecD vgt(VecD a, VecD b) {
  return mask_of(a.l[0] > b.l[0], a.l[1] > b.l[1], a.l[2] > b.l[2],
                 a.l[3] > b.l[3]);
}
inline VecD vge(VecD a, VecD b) {
  return mask_of(a.l[0] >= b.l[0], a.l[1] >= b.l[1], a.l[2] >= b.l[2],
                 a.l[3] >= b.l[3]);
}
inline VecD veq(VecD a, VecD b) {
  return mask_of(a.l[0] == b.l[0], a.l[1] == b.l[1], a.l[2] == b.l[2],
                 a.l[3] == b.l[3]);
}
/// Unordered not-equal: true when either operand is NaN.
inline VecD vneq(VecD a, VecD b) {
  return mask_of(!(a.l[0] == b.l[0]), !(a.l[1] == b.l[1]),
                 !(a.l[2] == b.l[2]), !(a.l[3] == b.l[3]));
}

inline VecD vor(VecD a, VecD b) {
  VecI ia, ib;
  std::memcpy(ia.l, a.l, sizeof(ia.l));
  std::memcpy(ib.l, b.l, sizeof(ib.l));
  for (std::size_t i = 0; i < 4; ++i) ia.l[i] |= ib.l[i];
  VecD out;
  std::memcpy(out.l, ia.l, sizeof(out.l));
  return out;
}
inline VecD vand(VecD a, VecD b) {
  VecI ia, ib;
  std::memcpy(ia.l, a.l, sizeof(ia.l));
  std::memcpy(ib.l, b.l, sizeof(ib.l));
  for (std::size_t i = 0; i < 4; ++i) ia.l[i] &= ib.l[i];
  VecD out;
  std::memcpy(out.l, ia.l, sizeof(out.l));
  return out;
}

/// Lanewise `mask ? a : b`; mask lanes are all-ones or all-zero bits.
inline VecD vselect(VecD mask, VecD a, VecD b) {
  VecI im, ia, ib;
  std::memcpy(im.l, mask.l, sizeof(im.l));
  std::memcpy(ia.l, a.l, sizeof(ia.l));
  std::memcpy(ib.l, b.l, sizeof(ib.l));
  for (std::size_t i = 0; i < 4; ++i) {
    ia.l[i] = (im.l[i] & ia.l[i]) | (~im.l[i] & ib.l[i]);
  }
  VecD out;
  std::memcpy(out.l, ia.l, sizeof(out.l));
  return out;
}

inline VecI to_bits(VecD a) {
  VecI out;
  std::memcpy(out.l, a.l, sizeof(out.l));
  return out;
}
inline VecD from_bits(VecI a) {
  VecD out;
  std::memcpy(out.l, a.l, sizeof(out.l));
  return out;
}

inline VecI iset1(std::uint64_t x) { return {{x, x, x, x}}; }
inline VecI iadd(VecI a, VecI b) {
  return {{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2],
           a.l[3] + b.l[3]}};
}
inline VecI isub(VecI a, VecI b) {
  return {{a.l[0] - b.l[0], a.l[1] - b.l[1], a.l[2] - b.l[2],
           a.l[3] - b.l[3]}};
}
inline VecI iand(VecI a, VecI b) {
  return {{a.l[0] & b.l[0], a.l[1] & b.l[1], a.l[2] & b.l[2],
           a.l[3] & b.l[3]}};
}
inline VecI ior(VecI a, VecI b) {
  return {{a.l[0] | b.l[0], a.l[1] | b.l[1], a.l[2] | b.l[2],
           a.l[3] | b.l[3]}};
}
inline VecI ixor(VecI a, VecI b) {
  return {{a.l[0] ^ b.l[0], a.l[1] ^ b.l[1], a.l[2] ^ b.l[2],
           a.l[3] ^ b.l[3]}};
}
template <int N>
inline VecI ishl(VecI a) {
  return {{a.l[0] << N, a.l[1] << N, a.l[2] << N, a.l[3] << N}};
}
template <int N>
inline VecI ishr(VecI a) {
  return {{a.l[0] >> N, a.l[1] >> N, a.l[2] >> N, a.l[3] >> N}};
}

#endif

/// Lanewise minimum with SSE2 semantics: `a < b ? a : b` (so a NaN in `a`
/// selects `b`). Implemented through the comparison+select primitives so
/// every backend agrees bit for bit, including on NaN and signed zeros.
inline VecD vmin(VecD a, VecD b) { return vselect(vlt(a, b), a, b); }

/// Lanewise maximum, `a > b ? a : b` (NaN in `a` selects `b`).
inline VecD vmax(VecD a, VecD b) { return vselect(vgt(a, b), a, b); }

SRM_SIMD_NS_END
