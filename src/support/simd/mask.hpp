// Lane-mask helpers for mask-and-retire control flow: compressing a VecD
// comparison mask into a scalar per-lane bitmask (and back), plus the
// and-not combinator the masked reductions use to retire lanes.
//
// These exist for the lane-parallel chain executor: four independent Gibbs
// chains run in the four lanes, and the batched slice sampler retires each
// lane from a step-out or shrink round as soon as its own chain is done.
// The scalar bitmask is the retire ledger — bit l set means lane l is
// still active — while vandnot/vselect apply it back to vector state.
//
// Like everything in support/simd, every operation is an exact lanewise
// bit manipulation, identical on all backends, and the whole API lives in
// the backend-named inline namespace so differently-flagged TUs can never
// link against each other's instantiations.
#pragma once

#include "support/simd/lanes.hpp"

SRM_SIMD_NS_BEGIN

/// All `kLanes` mask bits set.
inline constexpr unsigned kFullLaneMask = (1U << kLanes) - 1U;

#if defined(SRM_SIMD_BACKEND_AVX2)

/// Bit l of the result is the sign/mask bit of lane l (comparison masks
/// are all-ones or all-zero per lane, so this compresses them losslessly).
inline unsigned movemask(VecD a) {
  return static_cast<unsigned>(_mm256_movemask_pd(a.v));
}

/// Lanewise `a & ~b` — the retire step of a mask ledger held in lanes.
inline VecD vandnot(VecD a, VecD b) {
  return {_mm256_andnot_pd(b.v, a.v)};
}

#elif defined(SRM_SIMD_BACKEND_SSE2)

inline unsigned movemask(VecD a) {
  return static_cast<unsigned>(_mm_movemask_pd(a.lo)) |
         (static_cast<unsigned>(_mm_movemask_pd(a.hi)) << 2);
}

inline VecD vandnot(VecD a, VecD b) {
  return {_mm_andnot_pd(b.lo, a.lo), _mm_andnot_pd(b.hi, a.hi)};
}

#elif defined(SRM_SIMD_BACKEND_NEON)

inline unsigned movemask(VecD a) {
  const uint64x2_t lo = vreinterpretq_u64_f64(a.lo);
  const uint64x2_t hi = vreinterpretq_u64_f64(a.hi);
  return static_cast<unsigned>(vgetq_lane_u64(lo, 0) >> 63) |
         (static_cast<unsigned>(vgetq_lane_u64(lo, 1) >> 63) << 1) |
         (static_cast<unsigned>(vgetq_lane_u64(hi, 0) >> 63) << 2) |
         (static_cast<unsigned>(vgetq_lane_u64(hi, 1) >> 63) << 3);
}

inline VecD vandnot(VecD a, VecD b) {
  const uint64x2_t ones = vdupq_n_u64(~0ULL);
  return from_mask(vandq_u64(vreinterpretq_u64_f64(a.lo),
                             veorq_u64(vreinterpretq_u64_f64(b.lo), ones)),
                   vandq_u64(vreinterpretq_u64_f64(a.hi),
                             veorq_u64(vreinterpretq_u64_f64(b.hi), ones)));
}

#else  // scalar fallback

inline unsigned movemask(VecD a) {
  VecI bits = to_bits(a);
  unsigned m = 0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    m |= static_cast<unsigned>(bits.l[l] >> 63) << l;
  }
  return m;
}

inline VecD vandnot(VecD a, VecD b) {
  VecI ia = to_bits(a);
  const VecI ib = to_bits(b);
  for (std::size_t l = 0; l < kLanes; ++l) ia.l[l] &= ~ib.l[l];
  return from_bits(ia);
}

#endif

/// Expands a scalar per-lane bitmask back into a VecD comparison mask
/// (all-ones lanes where the bit is set). Inverse of movemask on masks.
inline VecD lane_mask(unsigned bits) {
  double buf[kLanes];
  VecI on = iset1(~0ULL);
  VecI off = iset1(0ULL);
  VecD von = from_bits(on);
  VecD voff = from_bits(off);
  vstore(buf, voff);
  double onbuf[kLanes];
  vstore(onbuf, von);
  for (std::size_t l = 0; l < kLanes; ++l) {
    if ((bits >> l) & 1U) buf[l] = onbuf[l];
  }
  return vload(buf);
}

/// Gathers element `offset` of each of the `kLanes` per-lane arrays into a
/// vector — the lane-indexed load the SoA chain workspaces use to pack
/// per-chain scalars (state coordinates, slice probes) into lanes.
inline VecD vgather_lanes(const double* const ptrs[kLanes],
                          std::size_t offset) {
  double buf[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) buf[l] = ptrs[l][offset];
  return vload(buf);
}

SRM_SIMD_NS_END
