// Vectorized double-precision log / exp / log1p / pow on the lane layer.
//
// ## Accuracy contract
//
// The implementations are FMA-free ports of the FreeBSD msun (fdlibm)
// scalar kernels, evaluated four lanes at a time with the exact-op-only
// primitives from lanes.hpp. They are *not* bit-identical to `std::log`
// etc. (libm uses different polynomial orderings and, on most hosts,
// fused operations), which is why the vectorized Gibbs path forks result
// identity and hides behind `GibbsOptions::vectorized`. They *are*
// bit-identical to themselves across every lanes.hpp backend, because no
// operation here depends on ISA-specific rounding (no FMA, no rsqrt-style
// approximations, no minpd NaN asymmetry).
//
// Worst-case error bounds versus correctly-rounded results, asserted by
// tests/support/simd_ulp_test.cpp over random bit patterns and the
// boundary ranges the detection models produce (`mu -> 0`, `mu -> 1`,
// Weibull exponents up to the exp overflow threshold):
//
//   function | budget (ULP)       | domain notes
//   -------- | ------------------ | -------------------------------------
//   log      | kLogUlpBudget      | full positive range incl. subnormals
//   exp      | kExpUlpBudget      | normal results; subnormal results may
//            |                    | carry one extra rounding (documented
//            |                    | below, tested with a looser bound)
//   log1p    | kLog1pUlpBudget    | x > -1; exact for |x| < 2^-53
//   pow      | kPowUlpBudget      | x >= 0; |y*log(x)| beyond the exp
//            |                    | range saturates exactly to inf / 0.
//            |                    | pow never sees x < 0 here (detection
//            |                    | bases are probabilities/days), so
//            |                    | that quadrant simply yields NaN
//
// IEEE special cases (0, +/-inf, NaN, x == 1, y == 0) match `std::`
// semantics lane-for-lane; see the blends at the tail of each function
// and tests/support/simd_math_test.cpp.
#pragma once

#include <cstdint>

#include "support/simd/lanes.hpp"

namespace srm::simd {

/// Pinned worst-case ULP budgets for the vectorized transcendentals (see
/// the accuracy contract above). The property tests assert the measured
/// error stays within these; docs quote them. Budgets are deliberately a
/// little above the worst error observed during bring-up so a compiler
/// upgrade cannot flake the suite.
inline constexpr double kLogUlpBudget = 2.0;
inline constexpr double kExpUlpBudget = 2.0;
inline constexpr double kLog1pUlpBudget = 4.0;
inline constexpr double kPowUlpBudget = 64.0;
/// exp results that land in the subnormal range suffer one extra rounding
/// from the two-step 2^k scaling; the property tests use this bound there.
inline constexpr double kExpSubnormalUlpBudget = 4096.0;

}  // namespace srm::simd

SRM_SIMD_NS_BEGIN

// fdlibm e_log.c coefficients: ln2 split plus the Remez polynomial for
// log(1+f) - f on [sqrt(2)/2 - 1, sqrt(2) - 1]. Hex floats keep the bit
// patterns exact and identical on every toolchain.
inline constexpr double kLn2Hi = 0x1.62e42fee00000p-1;
inline constexpr double kLn2Lo = 0x1.a39ef35793c76p-33;
inline constexpr double kLg1 = 0x1.5555555555593p-1;
inline constexpr double kLg2 = 0x1.999999997fa04p-2;
inline constexpr double kLg3 = 0x1.2492494229359p-2;
inline constexpr double kLg4 = 0x1.c71c51d8e78afp-3;
inline constexpr double kLg5 = 0x1.7466496cb03dep-3;
inline constexpr double kLg6 = 0x1.39a09d078c69fp-3;
inline constexpr double kLg7 = 0x1.2f112df3e5244p-3;

// fdlibm e_exp.c: 1/ln2 and the degree-5 polynomial for the core
// interval |r| <= 0.5*ln2.
inline constexpr double kInvLn2 = 0x1.71547652b82fep+0;
inline constexpr double kExpP1 = 0x1.555555555553ep-3;
inline constexpr double kExpP2 = -0x1.6c16c16bebd93p-9;
inline constexpr double kExpP3 = 0x1.1566aaf25de2cp-14;
inline constexpr double kExpP4 = -0x1.bbd41c5d26bf1p-20;
inline constexpr double kExpP5 = 0x1.6376972bea4d0p-25;

inline constexpr double kInf = __builtin_inf();
inline constexpr double kQuietNan = __builtin_nan("");

/// An unevaluated double-double sum hi + lo with |lo| <= ulp(hi)/2.
struct VecDD {
  VecD hi;
  VecD lo;
};

/// Knuth's branch-free two_sum: s + err == a + b exactly.
inline VecDD two_sum(VecD a, VecD b) {
  const VecD s = a + b;
  const VecD bb = s - a;
  const VecD err = (a - (s - bb)) + (b - bb);
  return {s, err};
}

/// Dekker's two_prod via 2^27+1 splitting (no FMA): p + err == a*b exactly
/// for products that neither overflow nor hit the subnormal range.
inline VecDD two_prod(VecD a, VecD b) {
  const VecD split = vset1(134217729.0);  // 2^27 + 1
  const VecD ca = split * a;
  const VecD ah = ca - (ca - a);
  const VecD al = a - ah;
  const VecD cb = split * b;
  const VecD bh = cb - (cb - b);
  const VecD bl = b - bh;
  const VecD p = a * b;
  const VecD err = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
  return {p, err};
}

/// Round to nearest integer (ties to even) as a double, via the classic
/// 1.5*2^52 magic-number trick. Valid for |x| < 2^51.
inline VecD vnearbyint(VecD x) {
  const VecD magic = vset1(0x1.8p52);
  return (x + magic) - magic;
}

/// Integer value of an integer-valued double (|k| < 2^51), as 64-bit lanes
/// (two's complement for negatives), again through the magic constant:
/// bits(k + 1.5*2^52) - bits(1.5*2^52) == k.
inline VecI vint_bits(VecD k) {
  const VecD magic = vset1(0x1.8p52);
  return isub(to_bits(k + magic), iset1(0x4338000000000000ULL));
}

/// Inverse of vint_bits: 64-bit integer lanes (|i| < 2^51) to doubles.
inline VecD vfrom_int(VecI i) {
  const VecD magic = vset1(0x1.8p52);
  return from_bits(iadd(i, iset1(0x4338000000000000ULL))) - magic;
}

namespace detail {

/// Shared fdlibm argument reduction x = 2^k * m, m in [sqrt(2)/2, sqrt(2)),
/// plus the polynomial pieces of log(m) = f - hfsq + s*(hfsq+R) where
/// f = m-1 and s = f/(2+f). Assumes x > 0 (callers blend the rest).
struct LogReduction {
  VecD dk;    // k as a double (includes the subnormal rescale bias)
  VecD f;     // m - 1
  VecD hfsq;  // 0.5*f*f
  VecD s_r;   // s*(hfsq + R)
};

inline LogReduction log_reduce(VecD x) {
  // Subnormal inputs: scale by 2^54 so the exponent field is usable.
  const VecD mask_sub =
      vand(vlt(x, vset1(0x1p-1022)), vgt(x, vset1(0.0)));
  const VecD xs = vselect(mask_sub, x * vset1(0x1p54), x);
  const VecD kbias = vselect(mask_sub, vset1(-54.0), vset1(0.0));

  const VecI bits = to_bits(xs);
  const VecI e =
      iadd(ishr<52>(bits), iset1(static_cast<std::uint64_t>(-1023)));
  const VecI man = iand(bits, iset1(0x000fffffffffffffULL));
  // Pick m in [sqrt(2)/2, sqrt(2)): i is bit 52 set when the mantissa is
  // at or above sqrt(2), i.e. when m should be halved and k bumped.
  const VecI i52 = iand(iadd(man, iset1(0x00095f6400000000ULL)),
                        iset1(0x0010000000000000ULL));
  const VecI mbits = ior(man, ixor(i52, iset1(0x3ff0000000000000ULL)));
  const VecD m = from_bits(mbits);
  const VecD dk = vfrom_int(iadd(e, ishr<52>(i52))) + kbias;

  const VecD f = m - vset1(1.0);
  const VecD s = f / (vset1(2.0) + f);
  const VecD z = s * s;
  const VecD w = z * z;
  const VecD t1 =
      w * (vset1(kLg2) + w * (vset1(kLg4) + w * vset1(kLg6)));
  const VecD t2 =
      z * (vset1(kLg1) +
           w * (vset1(kLg3) + w * (vset1(kLg5) + w * vset1(kLg7))));
  const VecD hfsq = vset1(0.5) * (f * f);
  return {dk, f, hfsq, s * (hfsq + (t1 + t2))};
}

/// log(x) as an unevaluated hi+lo pair, for pow's extended-precision
/// product. Only meaningful on lanes with finite x > 0; other lanes hold
/// garbage the caller must blend away.
inline VecDD log_ext(VecD x) {
  const LogReduction red = log_reduce(x);
  const VecDD h = two_sum(red.dk * vset1(kLn2Hi), red.f);
  const VecD t =
      ((red.s_r - red.hfsq) + red.dk * vset1(kLn2Lo)) + h.lo;
  const VecD hi = h.hi + t;
  return {hi, (h.hi - hi) + t};
}

}  // namespace detail

/// Natural logarithm; fdlibm e_log.c algorithm.
inline VecD log(VecD x) {
  const detail::LogReduction red = detail::log_reduce(x);
  VecD r = red.dk * vset1(kLn2Hi) -
           ((red.hfsq - (red.s_r + red.dk * vset1(kLn2Lo))) - red.f);
  // x == 0 -> -inf, x < 0 -> NaN, +inf -> +inf, NaN -> NaN.
  r = vselect(vle(x, vset1(0.0)),
              vselect(veq(x, vset1(0.0)), vset1(-kInf), vset1(kQuietNan)),
              r);
  r = vselect(vge(x, vset1(kInf)), vset1(kInf), r);
  r = vselect(vneq(x, x), x, r);
  return r;
}

/// Natural exponential; fdlibm e_exp.c algorithm with a two-step 2^k
/// scaling that keeps overflow/underflow lanes finite until the blends.
inline VecD exp(VecD x) {
  // Clamp so the reduction arithmetic never overflows; the true
  // saturation (inf / 0) is restored by the blends below. exp overflows
  // above ~709.78 and is exactly 0 below ~-745.2.
  const VecD hi_cut = vset1(710.0);
  const VecD lo_cut = vset1(-746.0);
  const VecD xc = vmin(vmax(x, lo_cut), hi_cut);

  const VecD kd = vnearbyint(xc * vset1(kInvLn2));
  const VecD rhi = xc - kd * vset1(kLn2Hi);
  const VecD rlo = kd * vset1(kLn2Lo);
  const VecD r = rhi - rlo;
  const VecD t = r * r;
  const VecD c =
      r - t * (vset1(kExpP1) +
               t * (vset1(kExpP2) +
                    t * (vset1(kExpP3) +
                         t * (vset1(kExpP4) + t * vset1(kExpP5)))));
  VecD y =
      vset1(1.0) - ((rlo - (r * c) / (vset1(2.0) - c)) - rhi);

  // Scale by 2^k in two exact halves so k near the overflow/underflow
  // limits (|k| up to 1077) stays inside the normal-exponent range of
  // each factor.
  const VecD kd1 = vnearbyint(kd * vset1(0.5));
  const VecD kd2 = kd - kd1;
  const VecI one_bits = iset1(0x3ff0000000000000ULL);
  const VecD s1 = from_bits(iadd(ishl<52>(vint_bits(kd1)), one_bits));
  const VecD s2 = from_bits(iadd(ishl<52>(vint_bits(kd2)), one_bits));
  y = (y * s1) * s2;

  y = vselect(vge(x, hi_cut), vset1(kInf), y);
  y = vselect(vle(x, lo_cut), vset1(0.0), y);
  y = vselect(vneq(x, x), x, y);
  return y;
}

/// log(1+x) via the classic correction log(u) + (x - (u-1))/u with
/// u = 1+x: exact for |x| < 2^-53 and within kLog1pUlpBudget elsewhere.
inline VecD log1p(VecD x) {
  const VecD u = vset1(1.0) + x;
  const VecD lg = log(u);
  const VecD corr = (x - (u - vset1(1.0))) / u;
  VecD r = lg + corr;
  r = vselect(veq(u, vset1(0.0)), vset1(-kInf), r);  // x == -1
  r = vselect(vge(x, vset1(kInf)), vset1(kInf), r);  // corr is NaN at +inf
  return r;  // x < -1 and NaN both fall out of log(u) as NaN
}

/// x^y for x >= 0: exp(y*log(x)) evaluated with an extended-precision log
/// and a Dekker product, so the error stays within kPowUlpBudget for
/// |y*log(x)| up to the exp overflow threshold; larger products (including
/// y == +/-inf) saturate exactly to inf / 0. x < 0 yields NaN (the
/// detection models never raise a negative base).
inline VecD pow(VecD x, VecD y) {
  const VecDD lx = detail::log_ext(x);
  const VecDD p = two_prod(y, lx.hi);
  const VecD pl = p.lo + y * lx.lo;
  const VecDD r = two_sum(p.hi, pl);
  VecD res = exp(r.hi) * (vset1(1.0) + r.lo);

  // Saturation guard: once y*log(x) leaves exp's finite range the result
  // is exactly inf or 0, and the Dekker splitting above may have
  // overflowed to NaN on the way (|y| beyond ~2^1000 — overflowing
  // Weibull day-power differences land here). The plain product never
  // spuriously saturates: for finite x != 1, |log(x)| >= 2^-53, so a
  // saturating product needs |y*log(x)| >= 710 for real.
  const VecD p0 = y * lx.hi;
  res = vselect(vge(p0, vset1(710.0)), vset1(kInf), res);
  res = vselect(vle(p0, vset1(-746.0)), vset1(0.0), res);

  // IEC 60559 corners, most-specific last so each later blend wins.
  const VecD y_pos = vgt(y, vset1(0.0));
  res = vselect(veq(x, vset1(0.0)),
                vselect(y_pos, vset1(0.0), vset1(kInf)), res);
  res = vselect(veq(x, vset1(kInf)),
                vselect(y_pos, vset1(kInf), vset1(0.0)), res);
  res = vselect(vlt(x, vset1(0.0)), vset1(kQuietNan), res);
  res = vselect(vor(vneq(x, x), vneq(y, y)), vset1(kQuietNan), res);
  res = vselect(veq(x, vset1(1.0)), vset1(1.0), res);  // 1^y == 1, any y
  res = vselect(veq(y, vset1(0.0)), vset1(1.0), res);  // x^0 == 1, any x
  return res;
}

SRM_SIMD_NS_END
