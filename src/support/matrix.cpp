#include "support/matrix.hpp"

#include "support/error.hpp"

namespace srm::support {

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), cells_(rows * cols, value) {
  SRM_EXPECTS(rows == 0 || cells_.size() / rows == cols,
              "Matrix dimensions overflow");
}

std::span<double> Matrix::row(std::size_t r) {
  SRM_EXPECTS(r < rows_, "Matrix row index out of range");
  return {cells_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  SRM_EXPECTS(r < rows_, "Matrix row index out of range");
  return {cells_.data() + r * cols_, cols_};
}

}  // namespace srm::support
